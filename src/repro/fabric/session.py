"""The session fabric: thousands of pipelines on one scheduler.

A :class:`SessionFabric` is the multi-tenant front-end of the runtime.
Every :meth:`~SessionFabric.open_session` builds its own pipeline and its
own :class:`~repro.runtime.engine.Engine` — per-session allocation plans,
event services and stats stay fully isolated — but all engines share ONE
:class:`~repro.mbt.scheduler.Scheduler`.  Thread transparency does the
heavy lifting: a session's pumps and coroutines are just more user-level
threads, so multiplexing N sessions is the same mechanism as running one,
and the scheduler's weighted-fair tenants (one per session) keep a hog
from starving its neighbours.

Key properties:

* **live attach/detach** — opening or closing a session never pauses the
  others; it only adds/removes threads and a tenant between dispatches;
* **namespaced names** — components and threads are prefixed with the
  session name (``"s3/source1"``, ``"pump:s3/source1"``), so builds of
  the same program never collide; a session opened with
  ``namespace=False`` keeps bare names (at most one such session — used
  by refinement certificates whose projections match on channel names);
* **parking** — an idle session's threads leave the ready structure
  entirely (:meth:`park`), so dispatch cost is independent of how many
  of the million sessions are idle; :meth:`unpark` is O(threads) heap
  pushes;
* **admission** — an optional
  :class:`~repro.fabric.admission.AdmissionController` prices each open
  against bandwidth/session budgets; its externally-supplied policy may
  reject (raises :class:`SessionRejected`), queue (the request parks in
  ``fabric.pending`` until :meth:`admit_pending`) or degrade (admit at a
  reduced fair-share weight).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.deploy.worker import _fresh_names, build_program
from repro.errors import DeployError
from repro.fabric.admission import (
    QUEUE,
    REJECT,
    AdmissionController,
    Decision,
    SessionRequest,
)
from repro.mbt.clock import Clock, VirtualClock
from repro.mbt.scheduler import Scheduler
from repro.runtime.engine import Engine
from repro.runtime.stats import PipelineStats


class SessionRejected(DeployError):
    """Admission control refused the session."""

    def __init__(self, request: SessionRequest, decision: Decision):
        super().__init__(
            f"session {request.name!r} rejected: {decision.reason}"
        )
        self.request = request
        self.decision = decision


class Session:
    """One tenant's pipeline, live on the shared scheduler."""

    def __init__(
        self,
        fabric: "SessionFabric",
        name: str,
        engine: Engine,
        thread_names: tuple[str, ...],
        weight: float,
        decision: Decision | None = None,
    ):
        self.fabric = fabric
        self.name = name
        self.engine = engine
        self.pipeline = engine.pipeline
        #: Names of the scheduler threads this session owns.
        self.thread_names = thread_names
        self.weight = weight
        #: The admission verdict (None when the fabric has no controller).
        self.decision = decision
        self.parked = False
        self.closed = False

    # -- convenience ---------------------------------------------------------

    @property
    def threads(self) -> list:
        registry = self.fabric.scheduler.threads
        return [registry[n] for n in self.thread_names if n in registry]

    @property
    def tenant(self):
        return self.fabric.scheduler.tenants.get(self.name)

    @property
    def stats(self) -> PipelineStats:
        """Per-session pipeline stats — the engine is per-session, so its
        stats already cover exactly this tenant's components."""
        return self.engine.stats

    @property
    def completed(self) -> bool:
        return self.engine.completed

    def set_weight(self, weight: float) -> None:
        """Live-tune the session's fair share."""
        self.weight = weight
        self.fabric.scheduler.add_tenant(self.name, weight)

    # -- lifecycle -----------------------------------------------------------

    def park(self) -> None:
        self.fabric.park(self.name)

    def unpark(self) -> None:
        self.fabric.unpark(self.name)

    def close(self) -> None:
        self.fabric.close_session(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "closed" if self.closed else
            "parked" if self.parked else "live"
        )
        return (
            f"<Session {self.name!r} {state} "
            f"threads={len(self.thread_names)} weight={self.weight}>"
        )


class SessionFabric:
    """Multiplexes many sessions over one shared scheduler.

    Parameters
    ----------
    clock / scheduler:
        Either pass a ready-made shared scheduler or let the fabric make
        one over ``clock`` (default: a fresh virtual clock).
    backend:
        Default engine backend for sessions (``"generator"``).
    admission:
        Optional :class:`AdmissionController`; without one every open is
        accepted.
    fair_lag:
        The scheduler's waking-tenant lag allowance (0.0 = strict
        start-time fair queueing).
    quantum:
        Dispatch quantum for the fabric's tenants (the scheduler's
        ``fair_quantum``): how many consecutive dispatches one session
        may burst before the weighted-fair order is re-evaluated.
        Bursting amortizes ready-queue maintenance and keeps a session's
        working set cache-hot, which is what makes thousand-session
        aggregate throughput comparable to a dedicated engine; fairness
        still holds at quantum granularity (vtime charging is exact and
        per-dispatch).  Set 1 for strict per-dispatch fairness.  Only
        applied when the fabric owns the scheduler.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        scheduler: Scheduler | None = None,
        backend: str = "generator",
        admission: AdmissionController | None = None,
        fair_lag: float = 0.0,
        quantum: int = 8,
    ):
        if scheduler is None:
            scheduler = Scheduler(
                clock=clock or VirtualClock(), fair_quantum=quantum
            )
        self.scheduler = scheduler
        self.scheduler._fair_lag = fair_lag
        self.backend = backend
        self.admission = admission
        self.sessions: dict[str, Session] = {}
        #: Requests the admission policy queued: (request, program, kwargs).
        self.pending: list[tuple[SessionRequest, Any, dict]] = []
        self._unnamed = 0
        self._bare_session: str | None = None

    # ------------------------------------------------------------ open

    def open_session(
        self,
        program: Any,
        name: str | None = None,
        weight: float = 1.0,
        namespace: bool = True,
        request: SessionRequest | None = None,
        start: bool = True,
        **engine_kwargs: Any,
    ) -> Session | None:
        """Build, admit, attach and start one tenant's pipeline.

        ``program`` is anything :func:`repro.deploy.worker.build_program`
        accepts: a composed Pipeline, a microlanguage source string, or a
        zero-arg builder callable.  The build runs under a private naming
        scope, so a thousand sessions of the same program get identical
        pre-prefix names.

        Returns the live :class:`Session` — or ``None`` when the
        admission policy queued the request (find it in ``pending``).
        Raises :class:`SessionRejected` on a reject verdict.  Attachment
        is live: no other session is paused, resorted or even reindexed.
        """
        if name is None:
            name = f"s{self._unnamed}"
            self._unnamed += 1
        if name in self.sessions:
            raise DeployError(f"session {name!r} already open")

        decision: Decision | None = None
        if self.admission is not None:
            if request is None:
                request = SessionRequest(name=name, weight=weight)
            decision = self.admission.admit(request)
            if decision.action == REJECT:
                raise SessionRejected(request, decision)
            if decision.action == QUEUE:
                self.pending.append((request, program, dict(
                    weight=weight, namespace=namespace, start=start,
                    **engine_kwargs,
                )))
                return None
            if decision.weight is not None:  # degraded admission
                weight = decision.weight

        if isinstance(program, str) or callable(program):
            pipeline = build_program(program)
        else:
            with _fresh_names():
                pipeline = build_program(program)
        if namespace:
            for component in pipeline.components:
                component.name = f"{name}/{component.name}"
        else:
            if self._bare_session is not None:
                raise DeployError(
                    f"session {self._bare_session!r} already holds the "
                    "bare (un-namespaced) name scope"
                )
            self._bare_session = name

        engine = Engine(
            pipeline,
            backend=self.backend,
            scheduler=self.scheduler,
            **engine_kwargs,
        )
        engine.setup()
        # The engine's drivers are the only spawn sites, so their names
        # enumerate the session's threads without an O(total-threads)
        # registry diff (which would make N opens O(N^2)).
        thread_names = tuple(sorted(
            [d.thread_name for d in engine.pump_drivers]
            + [d.thread_name for d in engine._coroutine_drivers.values()]
        ))

        tenant = self.scheduler.add_tenant(name, weight)
        for thread_name in thread_names:
            self.scheduler.assign_tenant(
                self.scheduler.threads[thread_name], tenant
            )

        session = Session(
            self, name, engine, thread_names, weight, decision
        )
        self.sessions[name] = session
        if start:
            engine.start()
        return session

    def admit_pending(self) -> list[Session]:
        """Retry every queued request (capacity may have freed up).

        Requests the policy queues again stay queued; rejects are dropped
        (their ``SessionRejected`` is swallowed — the caller already got
        a ``None`` at open time and can inspect the controller's stats).
        """
        retry, self.pending = self.pending, []
        opened = []
        for request, program, kwargs in retry:
            try:
                session = self.open_session(
                    program, name=request.name, request=request, **kwargs
                )
            except SessionRejected:
                continue
            if session is not None:
                opened.append(session)
        return opened

    # ------------------------------------------------------------ close

    def close_session(self, name: str) -> None:
        """Detach a session: stop its pipeline, drop its threads and its
        tenant.  Live: nothing else is paused.  A crashed session closes
        the same way — its threads just die dirtier first."""
        session = self.sessions.pop(name, None)
        if session is None:
            return
        session.closed = True
        try:
            session.engine.stop()
        except Exception:  # noqa: BLE001 - a crashed tenant still detaches
            pass
        for driver in session.engine.pump_drivers:
            if driver.timer is not None and driver.timer.running:
                driver.timer.stop()
        for thread_name in session.thread_names:
            self.scheduler.remove_thread(thread_name)
        self.scheduler._parked -= {
            t for t in self.scheduler._parked
            if t.name in set(session.thread_names)
        }
        self.scheduler.remove_tenant(name)
        if self.admission is not None:
            self.admission.release(name)
        if self._bare_session == name:
            self._bare_session = None

    # ------------------------------------------------------------ parking

    def park(self, name: str) -> None:
        """Quiesce an idle session: stop its timers and remove every one
        of its threads from the ready structure.  Parked sessions are
        free at dispatch time, whatever their number."""
        session = self.sessions[name]
        if session.parked:
            return
        for driver in session.engine.pump_drivers:
            if driver.timer is not None and driver.timer.running:
                driver.timer.stop()
        for thread in session.threads:
            self.scheduler.park_thread(thread)
        session.parked = True

    def unpark(self, name: str) -> None:
        """O(threads) wake: one heap push per thread, then restart timers
        and greedy loops."""
        session = self.sessions[name]
        if not session.parked:
            return
        for thread in session.threads:
            self.scheduler.unpark_thread(thread)
        session.parked = False
        for driver in session.engine.pump_drivers:
            driver.sync_running_state()

    # ------------------------------------------------------------ running

    @property
    def completed(self) -> bool:
        live = [s for s in self.sessions.values() if not s.parked]
        return bool(live) and all(s.completed for s in live)

    def run(
        self, until: float | None = None, max_steps: int | None = None
    ) -> "SessionFabric":
        self.scheduler.run(until=until, max_steps=max_steps)
        return self

    def run_to_completion(self, max_steps: int | None = None) -> "SessionFabric":
        """Run until every un-parked session's pipeline completed."""
        self.scheduler.run(max_steps=max_steps)
        return self

    def run_with_io(
        self,
        io: Any,
        idle_timeout: float = 0.05,
        max_steps: int | None = None,
        horizon: float = 1.0,
    ) -> "SessionFabric":
        """Fabric-level main loop: alternate scheduler runs with pumping
        a shared I/O source (typically a :class:`repro.net.mux.StreamMux`
        over one shared SocketLink, or a :class:`FabricIO` over several).
        Same contract as :meth:`Engine.run_with_io`."""
        should_stop = getattr(io, "should_stop", None)
        while True:
            until = self.scheduler.clock.now() + horizon
            self.scheduler.run(until=until, max_steps=max_steps)
            if self.completed:
                return self
            if io.pump():
                continue
            if should_stop is not None and should_stop():
                return self
            if not io.wait(idle_timeout):
                continue

    # ------------------------------------------------------------ obs

    def collect_metrics(self, registry) -> None:
        """Publish tenant-labeled gauges into a metrics registry.

        One series per session per family — under a registry cardinality
        cap (:mod:`repro.obs.metrics`), the million-session fabric's tail
        lands in the overflow bucket instead of exhausting memory.
        """
        for name, session in self.sessions.items():
            tenant = session.tenant
            registry.gauge(
                "repro_fabric_session_weight", tenant=name
            ).set(session.weight)
            registry.gauge(
                "repro_fabric_session_threads", tenant=name
            ).set(len(session.thread_names))
            registry.gauge(
                "repro_fabric_session_parked", tenant=name
            ).set(1.0 if session.parked else 0.0)
            if tenant is not None:
                registry.gauge(
                    "repro_fabric_tenant_vtime", tenant=name
                ).set(tenant.vtime)
                registry.gauge(
                    "repro_fabric_tenant_dispatches", tenant=name
                ).set(tenant.dispatches)

    def tenant_rows(self) -> list[dict]:
        """Per-tenant summary rows for the ``repro top`` tenant view."""
        rows = []
        for name, session in sorted(self.sessions.items()):
            tenant = session.tenant
            stats = session.engine.stats
            moved = sum(
                d.items_moved for d in session.engine.pump_drivers
            )
            rows.append({
                "tenant": name,
                "state": "parked" if session.parked else (
                    "done" if session.completed else "live"
                ),
                "weight": session.weight,
                "threads": len(session.thread_names),
                "items": moved,
                "dispatches": tenant.dispatches if tenant else 0,
                "vtime": tenant.vtime if tenant else 0.0,
                "time": stats.time,
            })
        return rows


class FabricIO:
    """Pump adapter over several inbound transports (muxes or links)."""

    def __init__(self, sources: list, should_stop: Callable[[], bool] | None = None):
        self.sources = list(sources)
        self._should_stop = should_stop

    def pump(self) -> int:
        return sum(source.pump() for source in self.sources)

    def wait(self, timeout: float) -> bool:
        for source in self.sources:
            wait = getattr(source, "wait", None)
            if wait is not None and wait(0.0):
                return True
        if timeout:
            import time as _time

            _time.sleep(min(timeout, 0.005))
        return False

    def should_stop(self) -> bool:
        return self._should_stop() if self._should_stop else False
