"""Admission control and overload shedding for the session fabric.

Policy-free middleware (Dearle et al.): the fabric *mechanism* exposes a
decision point at ``open_session``; the *policy* — when to reject, queue
or degrade — is supplied externally as a plain callable.  The controller
feeds the policy two things:

* a **bandwidth budget** — each session declares its flow typespec (or
  just an average item size) and :func:`repro.net.qosmap.bandwidth_demand`
  prices it; admitted demand accumulates against ``capacity_bps``;
* **live feedback sensors** (:mod:`repro.feedback.sensors`) — the policy
  sees current readings, so shedding can react to measured overload, not
  just static budgets.

Built-in policies cover the three canonical actions; applications pass
their own callable for anything richer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.typespec import Typespec
from repro.net.qosmap import bandwidth_demand

#: Decision actions.
ACCEPT = "accept"
REJECT = "reject"
QUEUE = "queue"
DEGRADE = "degrade"


@dataclass(frozen=True)
class SessionRequest:
    """What a tenant asks for at ``open_session`` time."""

    name: str
    weight: float = 1.0
    #: Flow typespec used to price the session's bandwidth demand.
    typespec: Typespec | None = None
    avg_item_bytes: float | None = None
    item_rate: float | None = None
    metadata: dict = field(default_factory=dict)

    def demand_bps(self) -> float | None:
        spec = self.typespec if self.typespec is not None else Typespec()
        return bandwidth_demand(
            spec,
            avg_item_bytes=self.avg_item_bytes,
            item_rate=self.item_rate,
        )


@dataclass(frozen=True)
class Decision:
    """The policy's verdict on one request."""

    action: str
    reason: str = ""
    #: For DEGRADE: the weight the session is admitted at instead.
    weight: float | None = None

    @property
    def admitted(self) -> bool:
        return self.action in (ACCEPT, DEGRADE)


#: A policy maps (request, snapshot) -> Decision (or an action string).
Policy = Callable[[SessionRequest, dict], Any]


class AdmissionController:
    """Prices sessions against capacity and applies an external policy.

    Parameters
    ----------
    policy:
        ``policy(request, snapshot) -> Decision | str``.  The snapshot
        dict holds ``sessions`` (admitted count), ``demand_bps`` (sum of
        admitted demands), ``request_bps`` (this request's price, None
        when unknown), ``capacity_bps``, ``max_sessions`` and
        ``sensors`` (name -> current reading).
    capacity_bps / max_sessions:
        Static budgets the built-in policies (and custom ones) compare
        against; either may be None (unbudgeted).
    sensors:
        ``{name: sensor}`` of live feedback sensors; anything with a
        ``sample() -> float``.
    """

    def __init__(
        self,
        policy: Policy | None = None,
        capacity_bps: float | None = None,
        max_sessions: int | None = None,
        sensors: dict[str, Any] | None = None,
    ):
        self.policy = policy if policy is not None else reject_over_capacity
        self.capacity_bps = capacity_bps
        self.max_sessions = max_sessions
        self.sensors = dict(sensors or {})
        self._admitted: dict[str, float] = {}
        self.stats = {"accepted": 0, "rejected": 0, "queued": 0,
                      "degraded": 0}

    # -- bookkeeping ---------------------------------------------------------

    @property
    def demand_bps(self) -> float:
        return sum(self._admitted.values())

    @property
    def admitted_sessions(self) -> int:
        return len(self._admitted)

    def snapshot(self, request: SessionRequest | None = None) -> dict:
        readings = {}
        for name, sensor in self.sensors.items():
            try:
                readings[name] = sensor.sample()
            except Exception:  # noqa: BLE001 - a dead sensor never blocks
                readings[name] = None
        return {
            "sessions": self.admitted_sessions,
            "demand_bps": self.demand_bps,
            "request_bps": request.demand_bps() if request else None,
            "capacity_bps": self.capacity_bps,
            "max_sessions": self.max_sessions,
            "sensors": readings,
        }

    # -- the decision point --------------------------------------------------

    def admit(self, request: SessionRequest) -> Decision:
        decision = self.policy(request, self.snapshot(request))
        if isinstance(decision, str):
            decision = Decision(action=decision)
        self.stats[
            {ACCEPT: "accepted", REJECT: "rejected", QUEUE: "queued",
             DEGRADE: "degraded"}.get(decision.action, "rejected")
        ] += 1
        if decision.admitted:
            self._admitted[request.name] = request.demand_bps() or 0.0
        return decision

    def release(self, name: str) -> None:
        """A session closed; return its demand to the budget."""
        self._admitted.pop(name, None)


# -- built-in policies ---------------------------------------------------------


def reject_over_capacity(request: SessionRequest, snapshot: dict) -> Decision:
    """Hard shed: reject when the static budgets would be exceeded."""
    verdict = _over_budget(request, snapshot)
    if verdict is not None:
        return Decision(action=REJECT, reason=verdict)
    return Decision(action=ACCEPT)


def queue_over_capacity(request: SessionRequest, snapshot: dict) -> Decision:
    """Keep-them-waiting: over-budget sessions park in the fabric's
    pending queue and retry as capacity frees up."""
    verdict = _over_budget(request, snapshot)
    if verdict is not None:
        return Decision(action=QUEUE, reason=verdict)
    return Decision(action=ACCEPT)


def degrade_over_capacity(factor: float = 0.25) -> Policy:
    """Soft shed: over-budget sessions are admitted at ``factor`` times
    their requested fair-share weight (they get in, but slower)."""

    def policy(request: SessionRequest, snapshot: dict) -> Decision:
        verdict = _over_budget(request, snapshot)
        if verdict is not None:
            return Decision(
                action=DEGRADE,
                reason=verdict,
                weight=max(request.weight * factor, 1e-6),
            )
        return Decision(action=ACCEPT)

    return policy


def _over_budget(request: SessionRequest, snapshot: dict) -> str | None:
    max_sessions = snapshot["max_sessions"]
    if max_sessions is not None and snapshot["sessions"] >= max_sessions:
        return f"session budget exhausted ({max_sessions})"
    capacity = snapshot["capacity_bps"]
    price = snapshot["request_bps"]
    if capacity is not None and price is not None:
        if snapshot["demand_bps"] + price > capacity:
            return (
                f"bandwidth budget exhausted "
                f"({snapshot['demand_bps']:.0f} + {price:.0f} > "
                f"{capacity:.0f} bps)"
            )
    return None
