"""Multi-tenant session fabric: thousands of pipelines, one scheduler.

Front door::

    from repro.fabric import SessionFabric

    fabric = SessionFabric()
    a = fabric.open_session(build_video, name="alice", weight=4.0)
    b = fabric.open_session(build_video, name="bob")
    fabric.run_to_completion()
    print(a.stats.summary())

See :mod:`repro.fabric.session` for the mechanism and
:mod:`repro.fabric.admission` for overload policies; docs/FABRIC.md for
the narrative.
"""

from repro.fabric.admission import (
    ACCEPT,
    DEGRADE,
    QUEUE,
    REJECT,
    AdmissionController,
    Decision,
    SessionRequest,
    degrade_over_capacity,
    queue_over_capacity,
    reject_over_capacity,
)
from repro.fabric.session import (
    FabricIO,
    Session,
    SessionFabric,
    SessionRejected,
)

__all__ = [
    "ACCEPT",
    "DEGRADE",
    "QUEUE",
    "REJECT",
    "AdmissionController",
    "Decision",
    "SessionRequest",
    "degrade_over_capacity",
    "queue_over_capacity",
    "reject_over_capacity",
    "FabricIO",
    "Session",
    "SessionFabric",
    "SessionRejected",
]
