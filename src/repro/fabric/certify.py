"""Certify fabric-hosted programs against their dedicated-engine twins.

The fabric's headline transparency claim: opening a program as one
session among many — same scheduler, weighted-fair dispatch, foreign
tenants churning around it — must not change what its sinks observe.
:func:`fabric_hosted` packages that "hosted under load" configuration as
the ``build()`` callable the refinement checker and the explorer take,
so the claim is machine-checked instead of asserted::

    from repro.check import check_refinement
    from repro.fabric.certify import fabric_hosted
    from repro.lang.builder import engine_builder

    cert = check_refinement(
        engine_builder(SRC),            # dedicated engine (specification)
        fabric_hosted(SRC, tenants=3),  # same program, multiplexed
    )

The program under certification opens with ``namespace=False`` so its
component (and hence channel) names match the dedicated twin exactly;
the background tenants are namespaced and invisible to the comparison —
they only perturb scheduling.
"""

from __future__ import annotations

from typing import Any, Callable


class HostedSession:
    """A fabric-hosted session shaped like an Engine for the harnesses.

    Exposes the certified session's ``pipeline`` plus the *shared*
    ``scheduler``, so seeded exploration perturbs the interleaving of
    every tenant, not just the session under test.
    """

    def __init__(self, fabric: Any, session: Any):
        self.fabric = fabric
        self.session = session
        self.pipeline = session.pipeline
        self.scheduler = fabric.scheduler

    @property
    def completed(self) -> bool:
        return self.fabric.completed

    @property
    def stats(self):
        return self.session.engine.stats

    @property
    def _setup_done(self) -> bool:
        # Sessions open set-up and started; sink taps installed after
        # build() must recompile this session's flow walkers to be seen.
        return getattr(self.session.engine, "_setup_done", False)

    def _compile_walkers(self) -> None:
        self.session.engine._compile_walkers()

    def run_to_completion(self, max_steps: int | None = None):
        self.fabric.run_to_completion(max_steps=max_steps)
        return self


def fabric_hosted(
    program: Any,
    tenants: int = 3,
    background: Any = None,
    quantum: int = 8,
) -> Callable[[], HostedSession]:
    """A zero-arg builder: ``program`` multiplexed among busy tenants.

    ``program`` and ``background`` are anything ``open_session`` takes
    (microlanguage source, builder callable, composed pipeline);
    ``background`` defaults to ``program`` itself, so the foreign load
    exercises the same code paths.  ``tenants`` background sessions open
    *around* the certified one (half before, half after — it must not
    matter).  The fabric's dispatch ``quantum`` is part of the certified
    configuration: bursts may only reorder *between* tenants, never
    within the certified session's streams.
    """
    from repro.fabric.session import SessionFabric

    if background is None:
        background = program

    def build() -> HostedSession:
        fabric = SessionFabric(quantum=quantum)
        before = tenants // 2
        for index in range(before):
            fabric.open_session(background, name=f"bg{index}")
        session = fabric.open_session(
            program, name="cert", namespace=False
        )
        for index in range(before, tenants):
            fabric.open_session(background, name=f"bg{index}")
        return HostedSession(fabric, session)

    return build
