"""The Infopipe composition microlanguage.

The paper plans "an Infopipe Composition and Restructuring Microlanguage"
(section 5, ref [24]) as the successor to the C++ setup interface.  This
package provides that declarative layer: textual pipeline descriptions are
parsed, resolved against a component registry, type-checked by the normal
composition machinery, and returned as ready-to-run pipelines.

::

    from repro.lang import build

    pipe = build('''
        mpeg_file(frames=300) >> decoder >> clocked_pump(30) >> tee(2) : t
        t.out0 >> display : live
        t.out1 >> keep(kind="I") >> buffer(32) >> clocked_pump(5) >> collect
    ''')

Grammar (one statement per line; ``#`` starts a comment)::

    statement := chain
    chain     := endpoint (">>" endpoint)*
    endpoint  := factory [":" alias] | alias | alias "." port
    factory   := NAME ["(" [arg ("," arg)*] ")"]
    arg       := literal | NAME "=" literal
    literal   := INT | FLOAT | STRING | "true" | "false"
"""

from repro.lang.parser import LangError, parse
from repro.lang.registry import Registry, default_registry
from repro.lang.builder import BuildResult, build
from repro.lang.builder import engine_builder as _engine_builder


def engine_builder(source, registry=None, **engine_kwargs):
    """Deprecated: use ``repro.api.Pipeline.from_source(...).builder()``.

    Delegates to the original implementation (internal callers — the
    refinement checker, the explorer — import it from
    :mod:`repro.lang.builder` and do not warn)."""
    from repro._compat import warn_deprecated

    warn_deprecated(
        "repro.lang.engine_builder(...)",
        "repro.api.Pipeline.from_source(...).builder()",
    )
    return _engine_builder(source, registry=registry, **engine_kwargs)

__all__ = [
    "BuildResult",
    "LangError",
    "Registry",
    "build",
    "default_registry",
    "engine_builder",
    "parse",
]
