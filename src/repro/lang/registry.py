"""Component registry for the microlanguage."""

from __future__ import annotations

from typing import Any, Callable

from repro.lang.parser import LangError


class Registry:
    """Maps factory names usable in pipeline descriptions to callables."""

    def __init__(self, parent: "Registry | None" = None):
        self._factories: dict[str, Callable[..., Any]] = {}
        self._parent = parent

    def register(self, name: str, factory: Callable[..., Any]) -> None:
        self._factories[name] = factory

    def resolve(self, name: str) -> Callable[..., Any]:
        factory = self._factories.get(name)
        if factory is not None:
            return factory
        if self._parent is not None:
            return self._parent.resolve(name)
        known = ", ".join(sorted(self.names())) or "none"
        raise LangError(f"unknown component type {name!r} (known: {known})")

    def knows(self, name: str) -> bool:
        if name in self._factories:
            return True
        return self._parent.knows(name) if self._parent else False

    def names(self) -> set[str]:
        names = set(self._factories)
        if self._parent is not None:
            names |= self._parent.names()
        return names

    def child(self) -> "Registry":
        """A scope layering extra factories over this registry."""
        return Registry(parent=self)


def default_registry() -> Registry:
    """Registry with every built-in component type registered.

    Names follow the paper's C++ quickstart where it has them
    (``mpeg_file``, ``decoder``, ``clocked_pump``, ``display``) and
    kebab-free snake case elsewhere.
    """
    from repro import components as comp
    from repro import media

    registry = Registry()

    # sources
    registry.register("iter", comp.IterSource)
    registry.register("counting", comp.CountingSource)
    registry.register("mpeg_file", media.MpegFileSource)
    registry.register("camera", media.CameraSource)
    registry.register("audio_source", media.AudioSource)
    registry.register("midi", media.MidiSource)

    # pumps
    registry.register("clocked_pump", comp.ClockedPump)
    registry.register("greedy_pump", comp.GreedyPump)
    registry.register("feedback_pump", comp.FeedbackPump)

    # buffers
    registry.register("buffer", comp.Buffer)
    registry.register("zip_buffer", comp.ZipBuffer)

    # transforms
    registry.register("decoder", media.MpegDecoder)
    registry.register("encoder", media.MpegEncoder)
    registry.register("resizer", media.Resizer)
    registry.register("dropper", media.PriorityDropFilter)
    registry.register("gate", comp.Gate)
    registry.register("stamp", comp.SequenceStamp)
    registry.register(
        "keep_kind",
        lambda kind: comp.PredicateFilter(
            lambda frame: getattr(frame, "kind", None) == kind
        ),
    )

    # tees
    registry.register("tee", comp.MulticastTee)
    registry.register("merge", comp.MergeTee)
    registry.register("router", comp.ActivityRouter)

    # sinks
    registry.register("collect", comp.CollectSink)
    registry.register("null", comp.NullSink)
    registry.register("display", media.VideoDisplay)
    registry.register("audio_device", media.AudioDevice)

    return registry
