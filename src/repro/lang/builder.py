"""Resolving parsed pipeline descriptions into live pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.core.component import Component, Port
from repro.core.composition import Pipeline, connect
from repro.lang.parser import FactoryCall, LangError, Reference, parse
from repro.lang.registry import Registry, default_registry


@dataclass
class BuildResult:
    """A built pipeline plus the alias table for later inspection."""

    pipeline: Pipeline
    aliases: dict[str, Component] = field(default_factory=dict)

    def __getitem__(self, alias: str) -> Component:
        try:
            return self.aliases[alias]
        except KeyError:
            raise LangError(f"no component aliased {alias!r}") from None


def build(source: str, registry: Registry | None = None) -> BuildResult:
    """Build a pipeline from a textual description.

    Each statement is a chain; aliases (``stage : name``) let later chains
    attach to specific components or ports (``name.out1 >> ...``), which is
    how tees are described.  All the usual composition checks (polarity,
    Typespecs) apply.
    """
    registry = registry or default_registry()
    chains = parse(source)
    if not chains:
        raise LangError("empty pipeline description")

    aliases: dict[str, Component] = {}
    pipe = Pipeline()

    def instantiate(call: FactoryCall) -> Component:
        # A bare name that matches an alias is a reference, not a factory.
        if (
            not call.args
            and not call.kwargs
            and call.alias is None
            and call.name in aliases
            and not registry.knows(call.name)
        ):
            return aliases[call.name]
        factory = registry.resolve(call.name)
        try:
            component = factory(*call.args, **call.kwargs_dict())
        except TypeError as exc:
            raise LangError(
                f"line {call.line}: {call.name}(...) rejected its "
                f"arguments: {exc}"
            ) from exc
        if not isinstance(component, Component):
            raise LangError(
                f"line {call.line}: factory {call.name!r} did not produce "
                f"a component (got {type(component).__name__})"
            )
        if call.alias is not None:
            if call.alias in aliases:
                raise LangError(
                    f"line {call.line}: alias {call.alias!r} already used"
                )
            aliases[call.alias] = component
        pipe.add(component)
        return component

    def resolve_endpoint(endpoint) -> tuple[Component, str | None]:
        if isinstance(endpoint, Reference):
            component = aliases.get(endpoint.alias)
            if component is None:
                raise LangError(
                    f"line {endpoint.line}: unknown alias "
                    f"{endpoint.alias!r}"
                )
            return component, endpoint.port
        return instantiate(endpoint), None

    for chain in chains:
        previous: tuple[Component, str | None] | None = None
        for endpoint in chain.endpoints:
            current = resolve_endpoint(endpoint)
            if previous is not None:
                out_port = _pick_out_port(*previous, line=chain.line)
                in_port = _pick_in_port(*current, line=chain.line)
                connect(out_port, in_port, check_typespecs=False)
            previous = current

    pipe.derive_typespecs()
    return BuildResult(pipeline=pipe, aliases=aliases)


def engine_builder(
    source: str,
    registry: Registry | None = None,
    **engine_kwargs,
):
    """A zero-arg builder of fresh Engines for one pipeline description.

    Exploration and refinement checking (:mod:`repro.check`) need to build
    the *same* program many times, once per schedule; this packages a
    microlanguage source plus Engine configuration into exactly the
    ``build()`` callable those harnesses take::

        from repro.check import check_refinement

        cert = check_refinement(
            engine_builder(SRC),                # the per-item original
            engine_builder(SRC, batch_max=32),  # the batched re-compile
        )

    ``engine_kwargs`` go to :class:`~repro.runtime.engine.Engine`
    (``batch_max``, ``trace``, ...).  The source is parsed once up front so
    syntax errors surface immediately, then re-built per call (components
    are stateful; schedules must not share them).
    """
    parse(source)  # fail fast on syntax errors, outside the harness loop
    engine_kwargs.setdefault("trace", True)

    def builder():
        from repro.runtime.engine import Engine

        result = build(source, registry)
        return Engine(result.pipeline, **engine_kwargs)

    builder.__name__ = "engine_builder"
    return builder


def _pick_out_port(component: Component, port_name: str | None,
                   line: int) -> Port:
    if port_name is not None:
        return component.port(port_name)
    free = [p for p in component.out_ports() if not p.connected]
    if len(free) != 1:
        names = ", ".join(p.name for p in free) or "none"
        raise LangError(
            f"line {line}: {component.name!r} needs an explicit out port "
            f"(free: {names}); write alias.port"
        )
    return free[0]


def _pick_in_port(component: Component, port_name: str | None,
                  line: int) -> Port:
    if port_name is not None:
        return component.port(port_name)
    free = [p for p in component.in_ports() if not p.connected]
    if len(free) < 1:
        raise LangError(
            f"line {line}: {component.name!r} has no free in port"
        )
    # Merge tees take the next free input in order.
    return free[0]
