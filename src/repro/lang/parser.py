"""Tokenizer and parser for the composition microlanguage."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Union

from repro.errors import CompositionError


class LangError(CompositionError):
    """A pipeline description could not be parsed or resolved."""


# ---------------------------------------------------------------- AST


@dataclass(frozen=True)
class FactoryCall:
    """``name(arg, key=value, ...) [: alias]``"""

    name: str
    args: tuple = ()
    kwargs: tuple = ()  # of (key, value) pairs
    alias: str | None = None
    line: int = 0

    def kwargs_dict(self) -> dict:
        return dict(self.kwargs)


@dataclass(frozen=True)
class Reference:
    """``alias`` or ``alias.port``"""

    alias: str
    port: str | None = None
    line: int = 0


Endpoint = Union[FactoryCall, Reference]


@dataclass(frozen=True)
class Chain:
    """One ``a >> b >> c`` statement."""

    endpoints: tuple
    line: int = 0


# ---------------------------------------------------------------- tokens

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>\#[^\n]*)
  | (?P<newline>\n)
  | (?P<arrow>>>)
  | (?P<float>-?\d+\.\d+)
  | (?P<int>-?\d+)
  | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<name>[A-Za-z_][A-Za-z0-9_-]*)
  | (?P<punct>[():,.=;])
    """,
    re.VERBOSE,
)


@dataclass
class _Token:
    kind: str
    text: str
    line: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    line = 1
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            snippet = source[position:position + 10]
            raise LangError(f"line {line}: cannot read {snippet!r}")
        position = match.end()
        kind = match.lastgroup
        if kind == "ws" or kind == "comment":
            continue
        if kind == "newline":
            tokens.append(_Token("newline", "\n", line))
            line += 1
            continue
        tokens.append(_Token(kind, match.group(), line))
    tokens.append(_Token("end", "", line))
    return tokens


# ---------------------------------------------------------------- parser


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._index = 0

    def peek(self) -> _Token:
        return self._tokens[self._index]

    def advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.advance()
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise LangError(
                f"line {token.line}: expected {want!r}, got {token.text!r}"
            )
        return token

    # -- grammar ------------------------------------------------------

    def parse(self) -> list[Chain]:
        chains: list[Chain] = []
        while True:
            self._skip_separators()
            if self.peek().kind == "end":
                return chains
            chains.append(self._chain())

    def _skip_separators(self) -> None:
        while self.peek().kind == "newline" or (
            self.peek().kind == "punct" and self.peek().text == ";"
        ):
            self.advance()

    def _chain(self) -> Chain:
        first = self._endpoint()
        endpoints = [first]
        while self.peek().kind == "arrow":
            self.advance()
            # allow a line break after ">>"
            while self.peek().kind == "newline":
                self.advance()
            endpoints.append(self._endpoint())
        token = self.peek()
        if token.kind not in ("newline", "end") and not (
            token.kind == "punct" and token.text == ";"
        ):
            raise LangError(
                f"line {token.line}: unexpected {token.text!r} after chain"
            )
        return Chain(tuple(endpoints), line=first.line)

    def _endpoint(self) -> Endpoint:
        token = self.expect("name")
        name, line = token.text, token.line
        # alias.port reference
        if self.peek().kind == "punct" and self.peek().text == ".":
            self.advance()
            port = self.expect("name").text
            return Reference(alias=name, port=port, line=line)
        args: tuple = ()
        kwargs: tuple = ()
        called = False
        if self.peek().kind == "punct" and self.peek().text == "(":
            called = True
            args, kwargs = self._arguments()
        alias = None
        if self.peek().kind == "punct" and self.peek().text == ":":
            self.advance()
            alias = self.expect("name").text
        if not called and alias is None:
            # Bare name: a factory with no arguments, or a reference to an
            # existing alias — the builder disambiguates.
            return FactoryCall(name=name, line=line)
        return FactoryCall(name=name, args=args, kwargs=kwargs, alias=alias,
                           line=line)

    def _arguments(self) -> tuple:
        self.expect("punct", "(")
        args: list = []
        kwargs: list = []
        if self.peek().kind == "punct" and self.peek().text == ")":
            self.advance()
            return (), ()
        while True:
            if (
                self.peek().kind == "name"
                and self._tokens[self._index + 1].kind == "punct"
                and self._tokens[self._index + 1].text == "="
            ):
                key = self.advance().text
                self.advance()  # '='
                kwargs.append((key, self._literal()))
            else:
                args.append(self._literal())
            token = self.advance()
            if token.kind == "punct" and token.text == ")":
                return tuple(args), tuple(kwargs)
            if not (token.kind == "punct" and token.text == ","):
                raise LangError(
                    f"line {token.line}: expected ',' or ')', got "
                    f"{token.text!r}"
                )

    def _literal(self) -> Any:
        token = self.advance()
        if token.kind == "int":
            return int(token.text)
        if token.kind == "float":
            return float(token.text)
        if token.kind == "string":
            body = token.text[1:-1]
            return body.replace('\\"', '"').replace("\\'", "'")
        if token.kind == "name":
            lowered = token.text.lower()
            if lowered == "true":
                return True
            if lowered == "false":
                return False
            raise LangError(
                f"line {token.line}: {token.text!r} is not a literal "
                "(quote strings)"
            )
        raise LangError(
            f"line {token.line}: expected a literal, got {token.text!r}"
        )


def parse(source: str) -> list[Chain]:
    """Parse a pipeline description into chains of endpoints."""
    return _Parser(_tokenize(source)).parse()
