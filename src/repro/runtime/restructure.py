"""Pipeline restructuring: swapping components in a paused pipeline.

The paper points at an "Infopipe Composition and Restructuring
Microlanguage" as the planned configuration layer (section 5, ref [24]).
The composition half lives in :mod:`repro.lang`; this module provides the
restructuring primitive: replacing one pipeline stage with a compatible
component while the pipeline is paused, without rebuilding anything else.

Supported targets are *direct-called linear stages* (function, and
consumer/producer used in their natural mode): they hold no in-flight
control state, so a paused swap is safe.  Coroutine stages, boundaries and
activity origins are rejected — their replacement would require draining a
suspended control flow, which the paper leaves to future work (and so do
we, explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.component import Component
from repro.core.composition import derive_typespecs, reachable_components
from repro.core.glue import FlowNode
from repro.errors import CompositionError, RuntimeFault

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import Engine


@dataclass(frozen=True)
class Replacement:
    """One committed restructuring, as recorded in ``engine.restructure_log``.

    The log is the audit trail the refinement checker stores in its
    certificates (:func:`repro.check.refine.certify_restructure`): which
    stage was swapped, in which section and mode, at what virtual time.
    """

    old: str
    new: str
    section: str
    mode: str
    virtual_time: float

    def __str__(self) -> str:
        return (
            f"replace {self.old!r} -> {self.new!r} in section "
            f"{self.section!r} ({self.mode} mode) at t={self.virtual_time}"
        )


def replace_component(
    engine: "Engine", old: Component, new: Component
) -> Replacement:
    """Replace ``old`` with ``new`` in a set-up (ideally paused) pipeline.

    Checks performed before anything is mutated:

    * ``old`` is a direct-called stage of some section (not a coroutine,
      boundary, origin, or shared segment member);
    * ``new`` is unconnected and linear (one ``in``, one ``out`` port);
    * ``new``'s style is directly callable in the stage's mode;
    * the flow Typespecs still check out with ``new`` in place.

    On success the ports are rewired, the allocation plan and runtime
    wiring are updated, ``new`` handles all subsequent items, and the swap
    is appended to ``engine.restructure_log`` as a :class:`Replacement`
    (also returned).  Raises :class:`CompositionError` /
    :class:`RuntimeFault` with nothing changed otherwise.
    """
    engine.setup()
    stage, section, node = _locate(engine, old)

    from repro.core.glue import needs_coroutine

    if new.in_ports() and len(new.in_ports()) != 1 or len(new.out_ports()) != 1:
        raise CompositionError(
            f"replacement {new.name!r} must be linear (one in, one out)"
        )
    if any(p.connected for p in new.ports.values()):
        raise CompositionError(f"{new.name!r} is already connected")
    if new.style is None or needs_coroutine(new.style, stage.mode):
        raise CompositionError(
            f"{new.name!r} ({new.style}) would need a coroutine in "
            f"{stage.mode} mode; only direct-callable replacements are "
            "supported"
        )

    upstream_port = old.in_port.peer
    downstream_port = old.out_port.peer
    assert upstream_port is not None and downstream_port is not None

    # -- trial rewire + typespec check, with rollback on failure ----------
    _rewire(old, new, upstream_port, downstream_port, stage.mode)
    try:
        derive_typespecs(reachable_components(new))
    except CompositionError:
        _rewire(new, old, upstream_port, downstream_port, stage.mode)
        raise

    # -- commit: plan, pipeline, runtime wiring ---------------------------
    stage.component = new
    node.component = new
    pipeline = engine.pipeline
    pipeline._components[pipeline._components.index(old)] = new

    _transfer_runtime_wiring(engine, old, new)

    # The compiled flow walkers hold the old component's bound methods;
    # rebuild them from the mutated plan.
    engine._compile_walkers()

    record = Replacement(
        old=old.name,
        new=new.name,
        section=section.origin.name,
        mode=str(stage.mode),
        virtual_time=engine.scheduler.now(),
    )
    engine.restructure_log.append(record)
    return record


def _locate(engine: "Engine", old: Component):
    assert engine.plan is not None
    for section in engine.plan.sections:
        for stage in section.stages:
            if stage.component is old:
                if stage.coroutine:
                    raise RuntimeFault(
                        f"{old.name!r} runs as a coroutine; restructuring "
                        "suspended control flows is not supported"
                    )
                if stage.shared:
                    raise RuntimeFault(
                        f"{old.name!r} is shared between sections and "
                        "cannot be swapped"
                    )
                node = _find_node(section, old)
                return stage, section, node
    raise RuntimeFault(
        f"{old.name!r} is not a direct stage of any section (boundaries, "
        "pumps and endpoints cannot be swapped)"
    )


def _find_node(section, component) -> FlowNode:
    for root in (section.pull_root, section.push_root):
        if root is None or not isinstance(root, FlowNode):
            continue
        for node in root.walk():
            if node.component is component:
                return node
    raise RuntimeFault(f"no flow node for {component.name!r}")  # pragma: no cover


def _rewire(old, new, upstream_port, downstream_port, mode) -> None:
    old.in_port.peer = None
    old.out_port.peer = None
    new.fix_port_mode("in", mode)
    new.in_port.peer = upstream_port
    upstream_port.peer = new.in_port
    new.out_port.peer = downstream_port
    downstream_port.peer = new.out_port


def _transfer_runtime_wiring(engine: "Engine", old, new) -> None:
    # Ownership and event registration follow the slot, not the object.
    owner = engine._owner.pop(old.name, None)
    if owner is not None:
        engine._owner[new.name] = owner
        owned = engine._thread_components.get(owner, {})
        owned.pop(old.name, None)
        owned[new.name] = new
    engine.events.unregister(old.name)
    engine._register_events(new)
    # Fresh emit/intake structures are created lazily for `new`; drop the
    # old ones so nothing keeps feeding a detached component.
    engine._pendings.pop(old, None)
    engine._replays.pop(old, None)
    old.on_detach()
    new.on_attach(engine)
