"""Aggregated pipeline statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class PipelineStats:
    """A snapshot of everything countable about a pipeline run."""

    #: Per-component counters (items_in, items_out, drops, ...).
    components: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Thread context switches performed by the scheduler.
    context_switches: int = 0
    #: Coroutine-boundary crossings (ip-push/ip-pull round trips).
    coroutine_switches: int = 0
    #: Messages delivered by the scheduler.
    messages_delivered: int = 0
    #: Pump cycles executed, per section origin.
    cycles: dict[str, int] = field(default_factory=dict)
    #: Cycles that found no data (nil policy upstream), per origin.
    nil_cycles: dict[str, int] = field(default_factory=dict)
    #: Batched-data-plane counters per origin (only origins that moved at
    #: least one batch appear): batches, items, avg_batch and the flush
    #: reasons (full = hit the batch size, dry = upstream ran dry, eos =
    #: the run ended the stream).
    batching: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Items still held inside stateful components (buffer fill levels,
    #: netpipe receive queues) at snapshot — the flow-invariant checker
    #: needs these to account for in-flight items.
    retained: dict[str, int] = field(default_factory=dict)
    #: Virtual (or real) time at snapshot.
    time: float = 0.0
    #: User-level threads created for the pipeline.
    threads: int = 0
    #: Undeliverable messages currently retained by the scheduler.
    dead_letters: int = 0
    #: Undeliverable messages discarded past the retention bound.
    dead_letters_dropped: int = 0

    def items_out(self, component_name: str) -> int:
        return self.components.get(component_name, {}).get("items_out", 0)

    def items_in(self, component_name: str) -> int:
        return self.components.get(component_name, {}).get("items_in", 0)

    def total_cycles(self) -> int:
        return sum(self.cycles.values())

    def bytes_in(self, component_name: str) -> int:
        """Payload bytes a component accepted (nominal frame sizes for
        media components, wire lengths for marshal/netpipe)."""
        return self.components.get(component_name, {}).get("bytes_in", 0)

    def bytes_out(self, component_name: str) -> int:
        """Payload bytes a component emitted."""
        return self.components.get(component_name, {}).get("bytes_out", 0)

    def drops(self, component_name: str) -> int:
        """Items a component *declared* dropping: the sum of its counters
        named ``drops`` or ``dropped*`` (``drops``, ``dropped_B``, ...).

        Declared drops are the only loss the flow-invariant checker
        (:mod:`repro.check.invariants`) accepts from a conserving
        component.
        """
        counters = self.components.get(component_name, {})
        return sum(
            value
            for key, value in counters.items()
            if isinstance(value, int)
            and (key == "drops" or key.startswith("dropped"))
        )

    def total_drops(self) -> int:
        return sum(self.drops(name) for name in self.components)

    def retained_in(self, component_name: str) -> int:
        return self.retained.get(component_name, 0)

    def summary(self) -> str:
        header = (
            f"time={self.time:.6f}s threads={self.threads} "
            f"ctx-switches={self.context_switches} "
            f"coroutine-switches={self.coroutine_switches} "
            f"messages={self.messages_delivered}"
        )
        if self.dead_letters or self.dead_letters_dropped:
            header += (
                f" dead-letters={self.dead_letters}"
                f" dead-letters-dropped={self.dead_letters_dropped}"
            )
        lines = [header]
        for name, counters in sorted(self.components.items()):
            interesting = {
                k: v
                for k, v in counters.items()
                if (isinstance(v, int) and v) or isinstance(v, float)
            }
            if interesting:
                pretty = " ".join(
                    f"{k}={v}" if isinstance(v, int) else f"{k}={v:.6g}"
                    for k, v in sorted(interesting.items())
                )
                lines.append(f"  {name}: {pretty}")
        for name, counters in sorted(self.batching.items()):
            lines.append(
                f"  batch {name}: avg={counters['avg_batch']:.2f} "
                f"batches={counters['batches']} "
                f"full={counters['flush_full']} "
                f"dry={counters['flush_dry']} "
                f"eos={counters['flush_eos']}"
            )
        return "\n".join(lines)
