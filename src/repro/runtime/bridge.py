"""Generated glue: adapting activity styles to usage modes (Figures 7/8).

"Our Infopipe middleware generates glue code for this purpose and converts
the functions into coroutines."  This module builds, for a component that
cannot be called directly in its assigned mode, a
:class:`~repro.mbt.coroutine.Suspendable` body whose requests are
:class:`~repro.core.styles.PullOp` / :class:`~repro.core.styles.PushOp`:

* active components — their own ``run()`` generator (or ``run_blocking``
  on an OS thread) is the body;
* consumers used in pull mode — the wrapper loop of Figure 7b:
  ``while running: x = prev.pull(); this.push(x)``;
* producers used in push mode — the wrapper loop of Figure 7a:
  ``while running: x = this.pull(); next.push(x)``.

Under the generator backend, a *direct-called* producer's ``get()`` cannot
suspend the enclosing plain function call, so upstream items are prefetched
through deterministic **replay**: ``pull()`` is re-executed from the start
until its ``get()`` calls are all satisfiable, then its reads are committed
(:class:`ReplayIntake`).  The OS-thread backend suspends for real and needs
no replay.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.core.component import Component
from repro.core.events import EOS, is_eos
from repro.core.styles import (
    ActiveComponent,
    EndOfStream,
    PullOp,
    PushOp,
    Style,
)
from repro.mbt.coroutine import (
    GeneratorSuspendable,
    OSThreadSuspendable,
    Suspendable,
)
from repro.errors import RuntimeFault


class NeedMoreInput(Exception):
    """Raised by a replay intake when a ``get()`` cannot be satisfied yet.

    Deliberately has no ``__init__``: it is raised for every upstream fetch
    of every direct-called producer, and the default C-level constructor
    keeps that hot path frameless.
    """

    @property
    def port(self) -> str:
        return self.args[0]


class ReplayIntake:
    """Deterministic-replay input buffers for direct-called producers.

    ``intake(port)`` reads the next prefetched item; raising
    :class:`NeedMoreInput` aborts the producer's ``pull()``, the driver
    fetches one more upstream item, and ``pull()`` is re-run from the top.
    Reads are only *committed* (removed from the buffers) when ``pull()``
    completes, so the replay sees identical inputs every attempt.
    """

    def __init__(self, ports: list[str]):
        self.buffers: dict[str, deque] = {p: deque() for p in ports}
        self._read: dict[str, int] = {p: 0 for p in ports}
        self.eos: set[str] = set()
        self._component: Component | None = None

    def begin(self) -> None:
        for port in self._read:
            self._read[port] = 0

    def intake(self, port: str = "in") -> Any:
        buffer = self.buffers[port]
        index = self._read[port]
        if index < len(buffer):
            self._read[port] = index + 1
            item = buffer[index]
            if is_eos(item):
                raise EndOfStream(port)
            return item
        if port in self.eos:
            raise EndOfStream(port)
        raise NeedMoreInput(port)

    def feed(self, port: str, item: Any) -> None:
        if is_eos(item):
            self.eos.add(port)
        self.buffers[port].append(item)

    def commit(self) -> None:
        component = self._component
        for port, count in self._read.items():
            if not count:
                continue
            buffer = self.buffers[port]
            for _ in range(count):
                buffer.popleft()
            if component is not None:
                component.stats["items_in"] += count
            self._read[port] = 0

    def install(self, component: Component) -> None:
        self._component = component
        for port in self.buffers:
            component._intakes[port] = self._make_intake(port)
        if len(self.buffers) == 1:
            # Single-input producer (the common case): shadow the generic
            # ``get()`` dispatch with the bound reader so the component's
            # ``pull()`` skips the per-call intake-table walk.
            (only_port,) = self.buffers
            reader = component._intakes[only_port]
            name = component.name

            def fast_get(port: str = only_port) -> Any:
                if port != only_port:
                    raise RuntimeFault(
                        f"{name!r}: get() on port {port!r} outside a "
                        "running pipeline"
                    )
                return reader()

            try:
                component.get = fast_get
            except AttributeError:  # pragma: no cover - slotted component
                pass

    def _make_intake(self, port: str):
        """A bound single-port reader (the hot path of every direct-called
        producer's ``get()``): one frame, no per-call dict-of-ports walk."""
        buffer = self.buffers[port]
        read = self._read
        eos = self.eos

        def intake_port() -> Any:
            index = read[port]
            if index < len(buffer):
                read[port] = index + 1
                item = buffer[index]
                if is_eos(item):
                    raise EndOfStream(port)
                return item
            if port in eos:
                raise EndOfStream(port)
            raise NeedMoreInput(port)

        return intake_port


class PendingEmits:
    """Collects a direct-called consumer's ``put()`` emissions so the
    driver can deliver them (possibly suspending) after ``push`` returns.

    The external activity is unchanged — every ``push`` triggers the same
    downstream pushes in the same order; only the suspension point moves
    from inside ``put()`` to just after ``push()`` returns (exact in-call
    suspension is available via the OS-thread backend).
    """

    def __init__(self):
        self.queue: deque[tuple[str, Any]] = deque()

    def install(self, component: Component) -> None:
        for port in component.out_ports():
            component._emitters[port.name] = (
                lambda item, p=port.name: self.queue.append((p, item))
            )

    def drain(self):
        while self.queue:
            yield self.queue.popleft()

    def __len__(self) -> int:
        return len(self.queue)


# ---------------------------------------------------------------------------
# Coroutine bodies
# ---------------------------------------------------------------------------


def build_suspendable(component: Component, backend: str) -> Suspendable:
    """Build the coroutine body for a component that needs one.

    ``backend`` is ``"generator"`` or ``"thread"``; a component only
    providing the other kind of body is accommodated (the two Suspendable
    backends are interchangeable from the driver's viewpoint).
    """
    if backend not in ("generator", "thread"):
        raise RuntimeFault(f"unknown coroutine backend {backend!r}")
    style = component.style
    if style is Style.ACTIVE:
        return _build_active(component, backend)
    if style is Style.CONSUMER:
        if backend == "thread":
            return OSThreadSuspendable(
                _consumer_thread_body(component), name=component.name
            )
        return GeneratorSuspendable(_consumer_pull_wrapper(component))
    if style is Style.PRODUCER:
        if backend == "thread":
            return OSThreadSuspendable(
                _producer_thread_body(component), name=component.name
            )
        return GeneratorSuspendable(_producer_push_wrapper(component))
    raise RuntimeFault(
        f"{component.name!r} (style {style}) never needs a coroutine"
    )


def _build_active(component: ActiveComponent, backend: str) -> Suspendable:
    has_gen = component.has_generator_body()
    has_blocking = component.has_blocking_body()
    if backend == "thread" and has_blocking:
        def body(channel, comp=component):
            api = BlockingApi(channel)
            comp.run_blocking(api)

        return OSThreadSuspendable(body, name=component.name)
    if has_gen:
        return GeneratorSuspendable(component.run())
    if has_blocking:
        def body(channel, comp=component):
            api = BlockingApi(channel)
            comp.run_blocking(api)

        return OSThreadSuspendable(body, name=component.name)
    raise RuntimeFault(
        f"{component.name!r} defines neither run() nor run_blocking()"
    )


class BlockingApi:
    """The pull/push API handed to ``run_blocking`` bodies."""

    def __init__(self, channel):
        self._channel = channel

    def pull(self, port: str = "in") -> Any:
        return self._channel.call(PullOp(port))

    def push(self, item: Any, port: str = "out") -> None:
        self._channel.call(PushOp(item, port))


def _consumer_pull_wrapper(component: Component):
    """Figure 7b as a generator: pull upstream, feed this.push, emit the
    results as they become available."""
    pending = PendingEmits()
    pending.install(component)
    while True:
        item = yield PullOp("in")
        if is_eos(item):
            break
        component.receive_push(item)
        for port, out in pending.drain():
            yield PushOp(out, port)
    # Trailing emissions (a flush on EOS would land here).
    for port, out in pending.drain():
        yield PushOp(out, port)


def _consumer_thread_body(component: Component):
    """Figure 7b on an OS thread: ``put()`` suspends genuinely inside
    ``push()``."""

    def body(channel):
        for port in component.out_ports():
            component._emitters[port.name] = (
                lambda item, p=port.name: channel.call(PushOp(item, p))
            )
        while True:
            item = channel.call(PullOp("in"))
            if is_eos(item):
                return
            component.receive_push(item)

    return body


def _producer_push_wrapper(component: Component):
    """Figure 7a as a generator: run this.pull() under replay, pushing each
    completed result downstream."""
    replay = ReplayIntake([p.name for p in component.in_ports()])
    replay.install(component)
    while True:
        replay.begin()
        try:
            out = component.serve_pull()
        except NeedMoreInput as need:
            item = yield PullOp(need.port)
            replay.feed(need.port, item)
            continue
        except EndOfStream:
            return
        replay.commit()
        yield PushOp(out, "out")


def _producer_thread_body(component: Component):
    """Figure 7a on an OS thread: ``get()`` blocks genuinely inside
    ``pull()`` — no replay restriction."""

    def body(channel):
        for port in component.in_ports():
            component._intakes[port.name] = (
                lambda p=port.name: _checked_pull(channel, p)
            )
        while True:
            try:
                out = component.serve_pull()
            except EndOfStream:
                return
            channel.call(PushOp(out, "out"))

    def _checked_pull(channel, port: str) -> Any:
        item = channel.call(PullOp(port))
        if is_eos(item):
            raise EndOfStream(port)
        component.stats["items_in"] += 1
        return item

    return body
