"""Batch policy: transmission granularity for the batched data plane.

The paper's pumps, buffers and netpipes move exactly one item per
push/pull; in this reproduction every item therefore pays a full walker
call, a gate wake and a scheduler message.  The batched data plane
amortizes those fixed costs by moving *runs* of items through the same
interfaces in one traversal, while keeping the per-item stream semantics
observable (Philipps & Rumpe's batch refinement of pipe-and-filter
architectures; policy/implementation separation after Walker et al.).

:class:`BatchPolicy` is the single knob.  It lives at the engine level —
batch size is a *transmission* policy, not a property of any component —
and is consulted:

* at compile time (``Engine._compile_walkers``): ``batch_max == 1``
  (the default) compiles exactly the per-item walkers, reproducing
  today's golden scheduler traces bit-for-bit; ``batch_max > 1``
  additionally compiles batch walkers for greedy pump sections;
* at run time (every pump cycle): the pump reads ``policy.current`` to
  size the next batch, so an adaptive controller can grow/shrink the
  batch without recompiling anything.

Semantics guarantees (see docs/RUNTIME.md §11):

* the sink observes the identical item sequence at every batch size;
* EOS and NIL never travel inside a batch's data run — EOS rides as an
  explicit tail element and fans out through the per-item walkers;
* stats count individual items; only the *placement* of simulated CPU
  cost coarsens (one ``Work`` per batch instead of one per item).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import RuntimeFault

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import Engine


class BatchPolicy:
    """How many items a pump may move per scheduler message.

    Parameters
    ----------
    batch_max:
        Upper bound on the batch size.  ``1`` (default) disables the
        batched data plane entirely.
    min_batch:
        Lower bound the adaptive controller may shrink to.
    adaptive:
        When True, ``current`` starts at ``min_batch`` and is expected to
        be steered by a feedback loop (see :func:`attach_adaptive_batching`);
        when False, ``current`` starts — and stays — at ``batch_max``.
    """

    __slots__ = ("batch_max", "min_batch", "adaptive", "current")

    def __init__(
        self,
        batch_max: int = 1,
        min_batch: int = 1,
        adaptive: bool = False,
    ):
        if batch_max < 1:
            raise RuntimeFault("batch_max must be at least 1")
        if not 1 <= min_batch <= batch_max:
            raise RuntimeFault("need 1 <= min_batch <= batch_max")
        self.batch_max = int(batch_max)
        self.min_batch = int(min_batch)
        self.adaptive = bool(adaptive)
        #: The batch size pumps use on their next cycle.  Mutable at run
        #: time; always within [min_batch, batch_max].
        self.current = self.min_batch if adaptive else self.batch_max

    def clamp(self, size: int) -> int:
        if size < self.min_batch:
            return self.min_batch
        if size > self.batch_max:
            return self.batch_max
        return size

    def set_current(self, size: int) -> int:
        """Clamp ``size`` into range and make it the live batch size."""
        self.current = self.clamp(int(size))
        return self.current

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchPolicy(batch_max={self.batch_max}, "
            f"min_batch={self.min_batch}, adaptive={self.adaptive}, "
            f"current={self.current})"
        )


def attach_adaptive_batching(
    engine: "Engine",
    buffer,
    period: float = 0.05,
    alpha: float = 0.4,
):
    """Steer ``engine.batch_policy.current`` from a buffer's fill fraction.

    A full buffer means the pipeline is throughput-bound and large batches
    amortize best; a draining buffer means latency matters more than
    amortization, so the batch shrinks back toward ``min_batch``.  The
    mapping is linear in the (EWMA-smoothed) fill fraction::

        current = min_batch + fill * (batch_max - min_batch)

    Built entirely from the existing feedback stack — BufferFillSensor →
    EwmaSmoother → BatchSizeActuator on a FeedbackLoop — and attached to
    the engine (so ``engine.stop()`` stops the loop).  Returns the loop.
    """
    from repro.feedback.actuators import BatchSizeActuator
    from repro.feedback.controllers import EwmaSmoother
    from repro.feedback.loop import FeedbackLoop
    from repro.feedback.sensors import BufferFillSensor

    policy = engine.batch_policy
    if policy.batch_max <= 1:
        raise RuntimeFault(
            "adaptive batching needs an engine batch_policy with "
            "batch_max > 1"
        )
    policy.adaptive = True
    policy.set_current(policy.min_batch)
    loop = FeedbackLoop(
        sensor=BufferFillSensor(buffer),
        controller=EwmaSmoother(alpha=alpha),
        actuator=BatchSizeActuator(policy),
        period=period,
        name="adaptive-batching",
    )
    loop.attach(engine)
    return loop
