"""Chain execution: direct calls, gates, locks and coroutine messaging.

All driver code here is written as generators over
:mod:`repro.mbt.syscalls`, composed with ``yield from`` into the code
functions of pump and coroutine threads.  Three kinds of suspension occur
mid-chain, and each stays responsive to control events:

* **buffer gates** — a push on a full BLOCK buffer, or a pull on an empty
  BLOCK buffer, parks the thread until a wake message arrives;
* **coroutine boundaries** — push/pull to a component running in another
  thread becomes an asynchronous ``ip-push``/``ip-pull`` message plus a
  wait for the reply ("the thread blocks waiting for either a control
  message or the data reply message", section 4);
* **simulated CPU work** — ``component.charge()`` is drained into ``Work``
  syscalls, making stage costs preemptible.

Two implementations of chain walking coexist:

* the **generic walkers** :func:`pull_from` / :func:`push_to`, which
  re-derive everything (isinstance checks, gate/lock/replay lookups,
  style dispatch) on every item — kept as the reference implementation
  and for ad-hoc callers;
* the **compiled walkers** built by :func:`compile_pull` /
  :func:`compile_push` at plan-realization time (see
  ``Engine._compile_walkers``), which resolve all of that *once per
  node* and return bound generator closures, so steady-state item
  movement does one dict-free call per hop.  They must mirror the
  generic walkers' behaviour exactly; any recompilation trigger (today:
  :func:`repro.runtime.restructure.replace_component`) re-runs the
  compilation pass.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import TYPE_CHECKING, Any, Union

from repro.core.component import Component
from repro.core.events import EOS, is_eos
from repro.core.glue import BoundaryRef, FlowNode
from repro.core.items import NIL, is_nil
from repro.core.styles import EndOfStream, Style
from repro.components.buffers import EMPTY, FULL, OK
from repro.errors import RuntimeFault
from repro.mbt.message import Message
from repro.mbt.syscalls import Receive, Send, Work
from repro.runtime.bridge import NeedMoreInput

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import Engine

FlowTarget = Union[FlowNode, BoundaryRef]


class ThreadCtx:
    """Per-thread execution context used by all driver generators."""

    def __init__(self, engine: "Engine", thread_name: str):
        self.engine = engine
        self.thread_name = thread_name

    # -- constraints ------------------------------------------------------

    def data_constraint(self):
        """Constraint propagated onto data messages this thread sends: the
        constraint of the message currently being processed (section 4:
        "Messages between coroutines inherit the constraint from the
        message received by the sending component")."""
        thread = self.engine.scheduler.threads.get(self.thread_name)
        if thread is not None and thread.processing is not None:
            return thread.processing.constraint
        return None

    # -- receiving with event transparency ---------------------------------

    def receive_data(self, kinds: set[str]):
        """Wait for a message of one of ``kinds``, dispatching control
        events that arrive in the meantime."""
        while True:
            message = yield Receive(
                match=lambda m: m.kind in kinds or m.kind == "event"
            )
            if message.kind == "event":
                self.dispatch_event_message(message)
                continue
            return message

    def receive_reply(self, request: Message):
        """Wait for the reply to ``request``, dispatching control events
        that arrive in the meantime (the paper's mechanism for keeping a
        blocked push/pull responsive)."""
        while True:
            message = yield Receive(
                match=lambda m: m.reply_to == request.msg_id
                or m.kind == "event"
            )
            if message.kind == "event":
                self.dispatch_event_message(message)
                continue
            return message

    def dispatch_event_message(self, message: Message) -> None:
        event, target_name = message.payload
        self.engine.dispatch_event_local(self.thread_name, event, target_name)

    # -- coroutine boundaries ----------------------------------------------

    def coroutine_push(self, component, item: Any):
        """Synchronous push into a coroutine running in another thread."""
        target = self.engine.thread_of(component)
        request = Message(
            kind="ip-push",
            payload=item,
            sender=self.thread_name,
            target=target,
            constraint=self.data_constraint(),
            needs_reply=True,
        )
        self.engine.stats_counters["coroutine_switches"] += 1
        yield Send(request)
        yield from self.receive_reply(request)

    def coroutine_pull(self, component):
        """Synchronous pull from a coroutine running in another thread."""
        target = self.engine.thread_of(component)
        request = Message(
            kind="ip-pull",
            sender=self.thread_name,
            target=target,
            constraint=self.data_constraint(),
            needs_reply=True,
        )
        self.engine.stats_counters["coroutine_switches"] += 1
        yield Send(request)
        reply = yield from self.receive_reply(request)
        return reply.payload


def maybe_work(component):
    """Drain a component's charged CPU cost into a Work syscall."""
    cost = component.drain_cost()
    if cost > 0.0:
        yield Work(cost)


# ---------------------------------------------------------------------------
# Buffer gates
# ---------------------------------------------------------------------------


class BufferGate:
    """Runtime mediation of one buffer's blocking behaviour.

    The buffer itself only reports full/empty; the gate parks the calling
    thread (keeping it event-responsive) and wakes it with ``buffer-item``
    / ``buffer-space`` messages when the state changes.
    """

    #: Flow tracer and its key for this boundary (repro.obs.flow).  Set by
    #: FlowTracer.attach; both stay None when tracing is off, so the data
    #: path pays one identity check per successful transfer and no new
    #: scheduler events ever (golden traces unchanged).
    _flow = None
    _flow_key = None

    def __init__(self, engine: "Engine", buffer):
        self.engine = engine
        self.buffer = buffer
        self._push_waiters: deque[str] = deque()
        self._pull_waiters: deque[str] = deque()
        #: Greedy pumps waiting for data (poked on every successful put).
        self.idle_pumps: set[str] = set()
        # Batched entry points, resolved once: buffers without the _many
        # protocol fall back to a per-item loop inside put_many/get_many.
        self._try_push_many = getattr(buffer, "try_push_many", None)
        self._try_pull_many = getattr(buffer, "try_pull_many", None)

    def put(self, ctx: ThreadCtx, item: Any, port: str = "in"):
        while True:
            status = self.buffer.try_push(item, port)
            if status != FULL:
                if self._flow is not None and item is not EOS:
                    self._flow.boundary_put(
                        self._flow_key, port, ctx.thread_name, 1
                    )
                yield from self._wake_pullers(ctx)
                return
            self._push_waiters.append(ctx.thread_name)
            yield from ctx.receive_data({"buffer-space"})

    def get(self, ctx: ThreadCtx, port: str = "out"):
        while True:
            status, item = self.buffer.try_pull(port)
            if status != EMPTY:
                if (
                    self._flow is not None
                    and item is not EOS
                    and item is not NIL
                ):
                    self._flow.boundary_get(
                        self._flow_key, port, ctx.thread_name, 1
                    )
                yield from self._wake_pushers(ctx)
                return item
            self._pull_waiters.append(ctx.thread_name)
            yield from ctx.receive_data({"buffer-item"})

    def put_many(self, ctx: ThreadCtx, items: list, port: str = "in"):
        """Deliver a run of data items; one puller wake per successful
        sub-run instead of one per item.  ``items`` must not contain EOS
        (EOS travels through the per-item path)."""
        buffer = self.buffer
        push_many = self._try_push_many
        total = len(items)
        start = 0
        while True:
            rest = items[start:] if start else items
            if push_many is not None:
                taken = push_many(rest, port)
            else:
                taken = 0
                for item in rest:
                    if buffer.try_push(item, port) == FULL:
                        break
                    taken += 1
            if taken:
                if self._flow is not None:
                    self._flow.boundary_put(
                        self._flow_key, port, ctx.thread_name, taken
                    )
                yield from self._wake_pullers(ctx)
                start += taken
                if start >= total:
                    return
                continue
            self._push_waiters.append(ctx.thread_name)
            yield from ctx.receive_data({"buffer-space"})

    def get_many(self, ctx: ThreadCtx, n: int, port: str = "out"):
        """Obtain a run of up to ``n`` items; one pusher wake per run.

        Returns a list: data items, optionally ending in EOS.  An empty
        list means "no data now" under a NIL policy (the per-item NIL)."""
        buffer = self.buffer
        pull_many = self._try_pull_many
        while True:
            if pull_many is not None:
                status, run = pull_many(n, port)
            else:
                run = []
                status = EMPTY
                while len(run) < n:
                    status, value = buffer.try_pull(port)
                    if status == EMPTY:
                        break
                    if value is NIL:
                        break
                    run.append(value)
                    if value is EOS:
                        break
                if run or status != EMPTY:
                    status = OK
            if status != EMPTY:
                if self._flow is not None:
                    count = len(run)
                    if count and run[-1] is EOS:
                        count -= 1
                    if count:
                        self._flow.boundary_get(
                            self._flow_key, port, ctx.thread_name, count
                        )
                yield from self._wake_pushers(ctx)
                return run
            self._pull_waiters.append(ctx.thread_name)
            yield from ctx.receive_data({"buffer-item"})

    def _wake_pullers(self, ctx: ThreadCtx):
        if self._pull_waiters:
            waiter = self._pull_waiters.popleft()
            yield Send(Message(kind="buffer-item", target=waiter,
                               sender=ctx.thread_name))
        for pump_thread in list(self.idle_pumps):
            self.idle_pumps.discard(pump_thread)
            yield Send(Message(kind="cycle", target=pump_thread,
                               sender=ctx.thread_name))

    def _wake_pushers(self, ctx: ThreadCtx):
        if self._push_waiters:
            waiter = self._push_waiters.popleft()
            yield Send(Message(kind="buffer-space", target=waiter,
                               sender=ctx.thread_name))

    def external_wake_pullers(self) -> None:
        """Wake waiting pullers from outside any driver context (used by
        netpipe receivers when a packet — or a coalesced frame — arrives
        from the network).  All wakes for one arrival go through a single
        multi-deliver post."""
        wakes = []
        if self._pull_waiters:
            waiter = self._pull_waiters.popleft()
            wakes.append(
                Message(kind="buffer-item", target=waiter, sender="network")
            )
        for pump_thread in list(self.idle_pumps):
            self.idle_pumps.discard(pump_thread)
            wakes.append(
                Message(kind="cycle", target=pump_thread, sender="network")
            )
        if wakes:
            self.engine.scheduler.post_many(wakes)


# ---------------------------------------------------------------------------
# Segment locks (shared chains below merges / above activity routers)
# ---------------------------------------------------------------------------


class SegmentLock:
    """Mutual exclusion for chains shared between pipeline sections.

    Cooperative scheduling already serializes plain calls; the lock matters
    when a shared chain suspends (a blocking buffer at its end) — without
    it, a second pump could interleave half-processed items.
    """

    def __init__(self, name: str):
        self.name = name
        self.holder: str | None = None
        self._waiters: deque[str] = deque()
        self.contentions = 0

    def held_by(self, ctx: ThreadCtx) -> bool:
        return self.holder == ctx.thread_name

    def acquire(self, ctx: ThreadCtx):
        while self.holder is not None and self.holder != ctx.thread_name:
            self.contentions += 1
            self._waiters.append(ctx.thread_name)
            yield from ctx.receive_data({"segment-free"})
        self.holder = ctx.thread_name

    def release(self, ctx: ThreadCtx):
        if self.holder != ctx.thread_name:
            raise RuntimeFault(
                f"lock {self.name!r} released by {ctx.thread_name!r} "
                f"but held by {self.holder!r}"
            )
        self.holder = None
        if self._waiters:
            waiter = self._waiters.popleft()
            yield Send(Message(kind="segment-free", target=waiter,
                               sender=ctx.thread_name))


# ---------------------------------------------------------------------------
# Chain walking
# ---------------------------------------------------------------------------


def pull_from(ctx: ThreadCtx, target: FlowTarget):
    """Obtain one item from the pull-side continuation ``target``.

    Returns the item, NIL (no data under a nil policy) or EOS.
    """
    engine = ctx.engine
    if isinstance(target, BoundaryRef):
        component = target.component
        gate = engine.gate_for(component)
        if gate is not None:
            return (yield from gate.get(ctx, target.port.name))
        # Passive source.
        item = component.serve_pull(target.port.name)
        yield from maybe_work(component)
        return item

    component = target.component
    lock = engine.lock_for(component)
    if lock is not None and not lock.held_by(ctx):
        yield from lock.acquire(ctx)
        try:
            return (yield from _pull_from_node(ctx, target))
        finally:
            yield from lock.release(ctx)
    return (yield from _pull_from_node(ctx, target))


def _pull_from_node(ctx: ThreadCtx, node: FlowNode):
    engine = ctx.engine
    component = node.component

    if engine.is_coroutine(component):
        return (yield from ctx.coroutine_pull(component))

    if component.style is Style.FUNCTION:
        item = yield from pull_from(ctx, node.branches["in"])
        if is_eos(item) or is_nil(item):
            return item
        component.stats["items_in"] += 1
        result = component.convert(item)
        component.stats["items_out"] += 1
        yield from maybe_work(component)
        return result

    # Producer style (possibly multi-input) under deterministic replay.
    replay = engine.replay_for(component)
    while True:
        replay.begin()
        try:
            result = component.serve_pull(node.entry_port)
        except NeedMoreInput as need:
            yield from maybe_work(component)
            upstream = yield from pull_from(ctx, node.branches[need.port])
            if is_nil(upstream):
                return NIL  # cannot complete now; prefetch is preserved
            replay.feed(need.port, upstream)
            continue
        except EndOfStream:
            yield from maybe_work(component)
            return EOS
        replay.commit()
        yield from maybe_work(component)
        return result


def push_to(ctx: ThreadCtx, target: FlowTarget, item: Any):
    """Deliver one item into the push-side continuation ``target``."""
    engine = ctx.engine
    if isinstance(target, BoundaryRef):
        component = target.component
        gate = engine.gate_for(component)
        if gate is not None:
            yield from gate.put(ctx, item, target.port.name)
            return
        # Passive sink.
        if is_eos(item):
            engine.note_sink_eos(component)
            on_eos = getattr(component, "on_eos", None)
            if on_eos is not None:
                on_eos()
            return
        component.receive_push(item, target.port.name)
        yield from maybe_work(component)
        return

    component = target.component
    lock = engine.lock_for(component)
    if lock is not None and not lock.held_by(ctx):
        yield from lock.acquire(ctx)
        try:
            yield from _push_to_node(ctx, target, item)
        finally:
            yield from lock.release(ctx)
        return
    yield from _push_to_node(ctx, target, item)


def _push_to_node(ctx: ThreadCtx, node: FlowNode, item: Any):
    engine = ctx.engine
    component = node.component

    if engine.is_coroutine(component):
        yield from ctx.coroutine_push(component, item)
        return

    if is_eos(item):
        # EOS bypasses user code and fans out to every downstream branch.
        for child in node.branches.values():
            yield from push_to(ctx, child, EOS)
        return

    if component.style is Style.FUNCTION:
        component.stats["items_in"] += 1
        result = component.convert(item)
        component.stats["items_out"] += 1
        yield from maybe_work(component)
        yield from push_to(ctx, node.branches["out"], result)
        return

    # Consumer style (including push tees): emissions are collected and
    # delivered after push() returns, possibly suspending between them.
    pending = engine.pending_for(component)
    component.receive_push(item, node.entry_port)
    yield from maybe_work(component)
    while pending.queue:
        port, out = pending.queue.popleft()
        yield from push_to(ctx, node.branches[port], out)


# ---------------------------------------------------------------------------
# Compiled walkers
# ---------------------------------------------------------------------------
#
# Everything below is the ahead-of-time twin of pull_from/push_to above:
# one bound generator closure per (thread, flow node), with the gate, lock,
# replay intake, pending-emit queue, coroutine target thread and per-port
# child walkers all resolved at compile time.  The run-time body of a hop
# is then just the user code plus the unavoidable suspension points.


def _bind_serve_pull(component, port: str):
    """Zero-arg per-item pull entry for ``component``.

    When the component keeps the stock :meth:`Component.serve_pull`, its
    per-call getattr dispatch and stats bookkeeping are folded into a bound
    closure; overriding components (activity routers) keep their own entry.
    """
    if type(component).serve_pull is Component.serve_pull:
        pull_impl = getattr(component, "pull", None)
        if pull_impl is not None:
            stats = component.stats

            def serve():
                item = pull_impl()
                if item is not EOS and item is not NIL:
                    stats["items_out"] += 1
                return item

            return serve
    if port == "out":  # the signature default: the bound method suffices
        return component.serve_pull
    return partial(component.serve_pull, port)


def _bind_receive_push(component, port: str):
    """One-arg per-item push entry for ``component`` (see
    :func:`_bind_serve_pull`); tees keep their overridden entry."""
    if type(component).receive_push is Component.receive_push:
        push_impl = getattr(component, "push", None)
        if push_impl is not None:
            stats = component.stats

            def receive(item):
                stats["items_in"] += 1
                push_impl(item)

            return receive
    if port == "in":  # the signature default: the bound method suffices
        return component.receive_push
    return partial(component.receive_push, port=port)


def _bind_drain(component):
    """Compile-time drain binding: ``(stock, drain)``.

    ``stock`` is True when the component keeps the stock
    :meth:`Component.drain_cost` (every component in this repository does),
    letting walkers read and reset ``_cost_accumulator`` directly instead
    of paying a method call per item; overriding components keep ``drain``.
    """
    return (
        type(component).drain_cost is Component.drain_cost,
        component.drain_cost,
    )


def _compile_coro_pull(ctx: ThreadCtx, component):
    """Bound ip-pull round trip to a coroutine component's thread.

    The reply wait is ``ThreadCtx.receive_reply`` unrolled in place (one
    generator frame fewer per crossing), with the same event transparency.

    When telemetry is attached at compile time, a *timed* variant is bound
    instead, recording the request-to-reply round trip; the untimed
    closure never branches on telemetry, so the cost when off is zero.
    """
    engine = ctx.engine
    target = engine.thread_of(component)
    sender = ctx.thread_name
    thread = engine.scheduler.threads[sender]
    dispatch_event = ctx.dispatch_event_message
    counter = engine._switch_counter()
    hist = _coro_histogram(engine, component)

    def coro_pull():
        message = thread._current_message
        request = Message(
            kind="ip-pull",
            sender=sender,
            target=target,
            constraint=message.constraint if message is not None else None,
            needs_reply=True,
        )
        counter[0] += 1
        yield Send(request)
        rid = request.msg_id
        while True:
            reply = yield Receive(
                match=lambda m, _rid=rid: m.reply_to == _rid
                or m.kind == "event"
            )
            if reply.kind == "event":
                dispatch_event(reply)
                continue
            return reply.payload

    base = coro_pull
    if hist is not None:
        now = engine._telemetry.now

        def coro_pull_timed():
            start = now()
            value = yield from coro_pull()
            hist.observe(now() - start)
            return value

        base = coro_pull_timed

    flow = engine._flow_tracer
    if flow is None:
        return base

    # The pulled item crossed from the coroutine's thread to ours: its
    # positional context crosses with it.
    inner = base

    def coro_pull_flow():
        value = yield from inner()
        if value is not EOS and value is not NIL:
            flow.transfer(target, sender, 1)
        return value

    return coro_pull_flow


def _coro_histogram(engine, component):
    """The round-trip histogram for a coroutine crossing, or None when
    telemetry is absent (the common case: plain walkers get bound)."""
    telemetry = engine._telemetry
    if telemetry is None:
        return None
    return telemetry.coroutine_histogram(component)


def _compile_coro_push(ctx: ThreadCtx, component):
    """Bound ip-push round trip to a coroutine component's thread.

    Like :func:`_compile_coro_pull`, binds a timed variant when telemetry
    is attached at compile time.
    """
    engine = ctx.engine
    target = engine.thread_of(component)
    sender = ctx.thread_name
    thread = engine.scheduler.threads[sender]
    dispatch_event = ctx.dispatch_event_message
    counter = engine._switch_counter()
    hist = _coro_histogram(engine, component)

    def coro_push(item):
        message = thread._current_message
        request = Message(
            kind="ip-push",
            payload=item,
            sender=sender,
            target=target,
            constraint=message.constraint if message is not None else None,
            needs_reply=True,
        )
        counter[0] += 1
        yield Send(request)
        rid = request.msg_id
        while True:
            reply = yield Receive(
                match=lambda m, _rid=rid: m.reply_to == _rid
                or m.kind == "event"
            )
            if reply.kind == "event":
                dispatch_event(reply)
                continue
            return

    base = coro_push
    if hist is not None:
        now = engine._telemetry.now

        def coro_push_timed(item):
            start = now()
            yield from coro_push(item)
            hist.observe(now() - start)

        base = coro_push_timed

    flow = engine._flow_tracer
    if flow is None:
        return base

    # The context moves before the Send: the coroutine's own walkers pop
    # it from *its* carried deque while handling the push.
    inner = base

    def coro_push_flow(item):
        if item is not EOS and item is not NIL:
            flow.transfer(sender, target, 1)
        yield from inner(item)

    return coro_push_flow


def compile_pull(ctx: ThreadCtx, target: FlowTarget):
    """Compile ``target`` into a bound pull walker: ``() -> generator``
    producing one item (or NIL/EOS), semantically identical to
    ``pull_from(ctx, target)``."""
    engine = ctx.engine
    if isinstance(target, BoundaryRef):
        component = target.component
        gate = engine.gate_for(component)
        port = target.port.name
        if gate is not None:
            gate_get = gate.get

            def gate_pull():
                return gate_get(ctx, port)

            return gate_pull

        serve = _bind_serve_pull(component, port)
        stock_drain, drain = _bind_drain(component)

        def source_pull():
            item = serve()
            cost = component._cost_accumulator if stock_drain else drain()
            if cost > 0.0:
                if stock_drain:
                    component._cost_accumulator = 0.0
                yield Work(cost)
            return item

        flow = engine._flow_tracer
        if flow is None:
            return source_pull
        # Traced variant (bound only while a FlowTracer is attached): a
        # gate-less boundary pull is where items enter the world, so each
        # data item claims a positional slot in this thread's carried
        # lineage (a context when sampled, a deferred None otherwise).
        # The body is source_pull's, restated rather than wrapped: a
        # ``yield from`` wrapper would create a second generator per
        # item, which alone blows the sampled-tracing overhead budget.
        # The unsampled fast path is two integer cell stores — the slot
        # is only materialized if a slow-path op needs the positions.
        births, every, pending, sampled_birth = flow.birth_parts(
            ctx.thread_name
        )

        def source_pull_traced():
            item = serve()
            cost = component._cost_accumulator if stock_drain else drain()
            if cost > 0.0:
                if stock_drain:
                    component._cost_accumulator = 0.0
                yield Work(cost)
            if item is not EOS and item is not NIL:
                n = births[0] + 1
                births[0] = n
                if n % every:
                    pending[0] += 1
                else:
                    sampled_birth()
            return item

        return source_pull_traced

    node_pull = _compile_pull_node(ctx, target)
    lock = engine.lock_for(target.component)
    if lock is None:
        return node_pull
    acquire, release = lock.acquire, lock.release
    thread_name = ctx.thread_name

    def locked_pull():
        # Uncontended acquire/release never suspend; take and drop the
        # lock inline and only fall back to the generator protocol when
        # there is actual contention (a holder to wait for, a waiter to
        # wake).  Exactly the steps lock.acquire/release would perform.
        holder = lock.holder
        if holder == thread_name:
            return (yield from node_pull())
        if holder is None:
            lock.holder = thread_name
        else:
            yield from acquire(ctx)
        try:
            return (yield from node_pull())
        finally:
            if lock._waiters:
                yield from release(ctx)
            else:
                lock.holder = None

    return locked_pull


def _compile_pull_node(ctx: ThreadCtx, node: FlowNode):
    engine = ctx.engine
    component = node.component

    if engine.is_coroutine(component):
        return _compile_coro_pull(ctx, component)

    stock_drain, drain = _bind_drain(component)

    if component.style is Style.FUNCTION:
        inner = compile_pull(ctx, node.branches["in"])
        convert = component.convert
        stats = component.stats

        def function_pull():
            item = yield from inner()
            if item is EOS or item is NIL:
                return item
            stats["items_in"] += 1
            result = convert(item)
            stats["items_out"] += 1
            cost = component._cost_accumulator if stock_drain else drain()
            if cost > 0.0:
                if stock_drain:
                    component._cost_accumulator = 0.0
                yield Work(cost)
            return result

        return function_pull

    # Producer style (possibly multi-input) under deterministic replay.
    replay = engine.replay_for(component)
    serve = _bind_serve_pull(component, node.entry_port)
    branch_pulls = {
        port: compile_pull(ctx, child) for port, child in node.branches.items()
    }
    begin, feed, commit = replay.begin, replay.feed, replay.commit

    def producer_pull():
        while True:
            begin()
            try:
                result = serve()
            except NeedMoreInput as need:
                cost = component._cost_accumulator if stock_drain else drain()
                if cost > 0.0:
                    if stock_drain:
                        component._cost_accumulator = 0.0
                    yield Work(cost)
                upstream = yield from branch_pulls[need.port]()
                if upstream is NIL:
                    return NIL  # cannot complete now; prefetch is preserved
                feed(need.port, upstream)
                continue
            except EndOfStream:
                cost = component._cost_accumulator if stock_drain else drain()
                if cost > 0.0:
                    if stock_drain:
                        component._cost_accumulator = 0.0
                    yield Work(cost)
                return EOS
            commit()
            cost = component._cost_accumulator if stock_drain else drain()
            if cost > 0.0:
                if stock_drain:
                    component._cost_accumulator = 0.0
                yield Work(cost)
            return result

    return producer_pull


def compile_push(ctx: ThreadCtx, target: FlowTarget):
    """Compile ``target`` into a bound push walker: ``(item) -> generator``,
    semantically identical to ``push_to(ctx, target, item)``."""
    engine = ctx.engine
    if isinstance(target, BoundaryRef):
        component = target.component
        gate = engine.gate_for(component)
        port = target.port.name
        if gate is not None:
            gate_put = gate.put

            def gate_push(item):
                return gate_put(ctx, item, port)

            return gate_push

        receive = _bind_receive_push(component, port)
        stock_drain, drain = _bind_drain(component)
        note_sink_eos = engine.note_sink_eos
        on_eos = getattr(component, "on_eos", None)

        def sink_push(item):
            if item is EOS:
                note_sink_eos(component)
                if on_eos is not None:
                    on_eos()
                return
            receive(item)
            cost = component._cost_accumulator if stock_drain else drain()
            if cost > 0.0:
                if stock_drain:
                    component._cost_accumulator = 0.0
                yield Work(cost)

        flow = engine._flow_tracer
        if flow is None:
            return sink_push
        thread = ctx.thread_name
        if getattr(component, "wire_sink", False):
            # Netpipe crossing: stage the item's context on the sender so
            # the outgoing packet carries it as a side-chunk.
            def wire_sink_push(item):
                if item is not EOS:
                    flow.stage_wire(component, thread, 1)
                yield from sink_push(item)

            return wire_sink_push

        # Restates sink_push's body (see source_pull_traced above): one
        # generator per delivered item, not two.  The delivery fast path
        # — pop the item's positional slot, anchor it for forks — is
        # inlined too; only sampled contexts and underflow forks call.
        carried, carried_popleft, pending, last_cell, finish_delivered, \
            slow_deliver = flow.deliver_parts(thread, component.name)

        def sink_push_traced(item):
            if item is EOS:
                note_sink_eos(component)
                if on_eos is not None:
                    on_eos()
                return
            receive(item)
            cost = component._cost_accumulator if stock_drain else drain()
            if cost > 0.0:
                if stock_drain:
                    component._cost_accumulator = 0.0
                yield Work(cost)
            if carried:
                flow_ctx = carried_popleft()
                last_cell[0] = flow_ctx
                if flow_ctx is not None:
                    finish_delivered(flow_ctx)
            elif pending[0]:
                pending[0] -= 1
                last_cell[0] = None
            else:
                slow_deliver()

        return sink_push_traced

    node_push = _compile_push_node(ctx, target)
    lock = engine.lock_for(target.component)
    if lock is None:
        return node_push
    acquire, release = lock.acquire, lock.release
    thread_name = ctx.thread_name

    def locked_push(item):
        # Same uncontended fast path as locked_pull above.
        holder = lock.holder
        if holder == thread_name:
            yield from node_push(item)
            return
        if holder is None:
            lock.holder = thread_name
        else:
            yield from acquire(ctx)
        try:
            yield from node_push(item)
        finally:
            if lock._waiters:
                yield from release(ctx)
            else:
                lock.holder = None

    return locked_push


def _compile_push_node(ctx: ThreadCtx, node: FlowNode):
    engine = ctx.engine
    component = node.component

    if engine.is_coroutine(component):
        return _compile_coro_push(ctx, component)

    stock_drain, drain = _bind_drain(component)
    branch_pushes = {
        port: compile_push(ctx, child) for port, child in node.branches.items()
    }
    # EOS bypasses user code and fans out to every downstream branch.
    children = tuple(branch_pushes.values())

    if component.style is Style.FUNCTION:
        out_push = branch_pushes["out"]
        convert = component.convert
        stats = component.stats

        def function_push(item):
            if item is EOS:
                for child in children:
                    yield from child(EOS)
                return
            stats["items_in"] += 1
            result = convert(item)
            stats["items_out"] += 1
            cost = component._cost_accumulator if stock_drain else drain()
            if cost > 0.0:
                if stock_drain:
                    component._cost_accumulator = 0.0
                yield Work(cost)
            yield from out_push(result)

        return function_push

    # Consumer style (including push tees): emissions are collected and
    # delivered after push() returns, possibly suspending between them.
    queue = engine.pending_for(component).queue
    receive = _bind_receive_push(component, node.entry_port)

    def consumer_push(item):
        if item is EOS:
            for child in children:
                yield from child(EOS)
            return
        receive(item)
        cost = component._cost_accumulator if stock_drain else drain()
        if cost > 0.0:
            if stock_drain:
                component._cost_accumulator = 0.0
            yield Work(cost)
        while queue:
            port, out = queue.popleft()
            yield from branch_pushes[port](out)

    return consumer_push


# ---------------------------------------------------------------------------
# Batch walkers
# ---------------------------------------------------------------------------
#
# The batched twins of compile_pull/compile_push: ``pull_many(n)`` yields a
# run of up to n items (data first; the run may end in EOS; an empty run
# means "no data now"), ``push_many(items)`` delivers a non-empty pure-data
# run.  Compiled only when the engine's batch policy allows batch_max > 1;
# at batch_max == 1 the per-item walkers run unchanged, so golden traces
# are untouched.
#
# Two tiers, chosen per subtree at compile time:
#
# * **plain subtrees** — no gates, locks or coroutine boundaries anywhere
#   below: the whole hop chain collapses to plain Python callables invoked
#   in a tight loop, with every component's simulated CPU cost coalesced
#   into ONE ``Work`` syscall per run.  Per-item stats stay exact; only
#   the *placement* of Work coarsens (documented in docs/RUNTIME.md §11),
#   and never at batch_max == 1 because these walkers are not compiled
#   then.
# * **everything else** — gates move runs via put_many/get_many (one wake
#   per run), coroutine boundaries cross once per run via
#   ip-push-batch/ip-pull-batch, and any structure without a batch-aware
#   form falls back to looping the compiled per-item walker.


def _bind_drain_fn(component):
    """Zero-arg "take accumulated cost" closure for batch walkers."""
    stock, drain = _bind_drain(component)
    if not stock:
        return drain

    def take():
        cost = component._cost_accumulator
        if cost:
            component._cost_accumulator = 0.0
        return cost

    return take


def _convert_many_fn(component):
    """The component's vectorized convert, or a per-item fallback.

    ``convert_many`` must stay 1:1 in-order (FunctionComponent's default
    guarantees it); stats are charged by the caller per item.
    """
    convert_many = getattr(component, "convert_many", None)
    if convert_many is not None:
        return convert_many
    convert = component.convert
    return lambda items: [convert(item) for item in items]


def _subtree_batch_source(engine, target) -> bool:
    """True when ``target`` is a chain of plain FUNCTION nodes over a
    gate-less boundary source that offers a batch ``pull_many`` entry.

    Such subtrees must NOT collapse into the per-item plain tier — the
    recursive FUNCTION composition reaches the source's columnar fast
    path instead, so whole batches flow through without materializing
    per-item objects.
    """
    while isinstance(target, FlowNode):
        component = target.component
        if (
            engine.is_coroutine(component)
            or engine.lock_for(component) is not None
            or component.style is not Style.FUNCTION
        ):
            return False
        target = target.branches["in"]
    component = target.component
    return (
        engine.gate_for(component) is None
        and getattr(component, "pull_many", None) is not None
    )


def _compile_pull_plain(ctx: ThreadCtx, target: FlowTarget):
    """Compile ``target`` into ``(fn, drains)`` of plain callables when the
    whole subtree has no gate, lock or coroutine boundary — else None.

    ``fn()`` returns one item (or NIL/EOS) without suspending; ``drains``
    are the per-component cost takers the batch loop sums into one Work.
    """
    engine = ctx.engine
    if isinstance(target, BoundaryRef):
        component = target.component
        if engine.gate_for(component) is not None:
            return None
        serve = _bind_serve_pull(component, target.port.name)
        flow = engine._flow_tracer
        if flow is not None:
            base_serve = serve
            # Same inlined birth fast path as source_pull_traced: two
            # integer cell stores per unsampled item, no extra call frame
            # (this is the hot source path under demand-predicting
            # producers, where the per-call cost is paid per *item*).
            births, every, pending, sampled_birth = flow.birth_parts(
                ctx.thread_name
            )

            def serve_traced():
                item = base_serve()
                if item is not EOS and item is not NIL:
                    n = births[0] + 1
                    births[0] = n
                    if n % every:
                        pending[0] += 1
                    else:
                        sampled_birth()
                return item

            serve = serve_traced
        return serve, [_bind_drain_fn(component)]

    component = target.component
    if engine.is_coroutine(component) or engine.lock_for(component) is not None:
        return None

    if component.style is Style.FUNCTION:
        inner = _compile_pull_plain(ctx, target.branches["in"])
        if inner is None:
            return None
        inner_fn, drains = inner
        convert = component.convert
        stats = component.stats

        def function_plain():
            item = inner_fn()
            if item is EOS or item is NIL:
                return item
            stats["items_in"] += 1
            result = convert(item)
            stats["items_out"] += 1
            return result

        return function_plain, drains + [_bind_drain_fn(component)]

    # Producer style under deterministic replay.  A pull() that needs k
    # inputs is re-run from the top after every refill, so fetching one
    # upstream item per NeedMoreInput costs k+1 attempts per output item.
    # The batch walker instead *predicts demand*: it remembers how many
    # items each port consumed on the last successful pull and refills up
    # to that count in one go, cutting the attempts to ~2.  Over-fetched
    # items simply stay in the replay intake buffers (the same place the
    # per-item walker parks partial reads), and the refill loop stops at
    # EOS/NIL, so the item stream and the quiescent flow accounting are
    # identical to the per-item walker at every batch size.
    branch_fns = {}
    drains = [_bind_drain_fn(component)]
    for port, child in target.branches.items():
        sub = _compile_pull_plain(ctx, child)
        if sub is None:
            return None
        branch_fns[port] = sub[0]
        drains.extend(sub[1])
    replay = engine.replay_for(component)
    serve = _bind_serve_pull(component, target.entry_port)
    begin, feed, commit = replay.begin, replay.feed, replay.commit
    buffers = replay.buffers
    read_counts = replay._read
    demand = {port: 1 for port in branch_fns}

    if len(branch_fns) == 1:
        # Single-input producer (the common case): port/buffer/fetch are
        # fixed, and the predicted demand is refilled *before* the first
        # serve() attempt, so a steady-state pull succeeds on attempt one
        # instead of paying a probe run + NeedMoreInput per item.
        (only_port,) = branch_fns
        fetch = branch_fns[only_port]
        buffer = buffers[only_port]
        ports_at_eos = replay.eos
        want_cell = [1]

        def refill():
            upstream = fetch()
            if upstream is NIL:
                return False
            feed(only_port, upstream)
            want = want_cell[0]
            while upstream is not EOS and len(buffer) < want:
                upstream = fetch()
                if upstream is NIL:
                    break
                feed(only_port, upstream)
            return True

        def single_producer_plain():
            if len(buffer) < want_cell[0] and only_port not in ports_at_eos:
                refill()
            while True:
                begin()
                try:
                    result = serve()
                except NeedMoreInput:
                    if not refill():
                        return NIL  # prefetch is preserved for the retry
                    continue
                except EndOfStream:
                    return EOS
                consumed = read_counts[only_port]
                if consumed > want_cell[0]:
                    want_cell[0] = consumed
                commit()
                return result

        return single_producer_plain, drains

    def producer_plain():
        while True:
            begin()
            try:
                result = serve()
            except NeedMoreInput as need:
                port = need.port
                fetch = branch_fns[port]
                upstream = fetch()
                if upstream is NIL:
                    return NIL  # cannot complete now; prefetch is preserved
                feed(port, upstream)
                buffer = buffers[port]
                want = demand[port]
                while upstream is not EOS and len(buffer) < want:
                    upstream = fetch()
                    if upstream is NIL:
                        break
                    feed(port, upstream)
                continue
            except EndOfStream:
                return EOS
            for port, count in read_counts.items():
                if count > demand[port]:
                    demand[port] = count
            commit()
            return result

    return producer_plain, drains


def compile_pull_many(ctx: ThreadCtx, target: FlowTarget):
    """Compile ``target`` into a batch pull walker ``(n) -> generator``
    returning a run of up to ``n`` items.

    Run conventions: data items first, in stream order; the run may end in
    EOS (at most once, always last); ``[]`` means "no data now" (the batch
    NIL).  Running ``pull_many(n)`` observes the same per-item stats as
    ``n`` per-item pulls.
    """
    engine = ctx.engine
    if isinstance(target, BoundaryRef):
        component = target.component
        gate = engine.gate_for(component)
        if gate is not None:
            get_many = gate.get_many
            port = target.port.name

            def gate_pull_many(n):
                return get_many(ctx, n, port)

            return gate_pull_many

        pull_run = getattr(component, "pull_many", None)
        if pull_run is not None:
            # Batch-aware source: one pull_many call per run, typically
            # returning a columnar batch (pure data; EOS arrives as its
            # own [EOS] run on a later cycle).
            stats = component.stats
            take_cost = _bind_drain_fn(component)

            flow = engine._flow_tracer
            births = (
                None if flow is None else flow.births_fn(ctx.thread_name)
            )

            def source_pull_many(n):
                run = pull_run(n)
                count = len(run)
                if count:
                    if not getattr(run, "columnar", False) and run[-1] is EOS:
                        count -= 1
                    if count:
                        stats["items_out"] += count
                        if births is not None:
                            births(count)
                cost = take_cost()
                if cost > 0.0:
                    yield Work(cost)
                return run

            return source_pull_many

    plain = (
        None
        if _subtree_batch_source(engine, target)
        else _compile_pull_plain(ctx, target)
    )
    if plain is not None:
        fn, drains = plain

        def plain_pull_many(n):
            run = []
            while len(run) < n:
                item = fn()
                if item is NIL:
                    break
                run.append(item)
                if item is EOS:
                    break
            total = 0.0
            for take in drains:
                total += take()
            if total > 0.0:
                yield Work(total)
            return run

        return plain_pull_many

    if isinstance(target, FlowNode) and engine.lock_for(target.component) is None:
        component = target.component
        if engine.is_coroutine(component):
            return _compile_coro_pull_many(ctx, component)
        if component.style is Style.FUNCTION:
            inner_many = compile_pull_many(ctx, target.branches["in"])
            convert_many = _convert_many_fn(component)
            stats = component.stats
            take_cost = _bind_drain_fn(component)

            def function_pull_many(n):
                run = yield from inner_many(n)
                if not run:
                    return run
                eos = run[-1] is EOS
                data = run[:-1] if eos else run
                if data:
                    stats["items_in"] += len(data)
                    results = convert_many(data)
                    stats["items_out"] += len(results)
                    cost = take_cost()
                    if cost > 0.0:
                        yield Work(cost)
                else:
                    results = []
                if eos:
                    if type(results) is not list:
                        # Columnar results materialize once at stream end
                        # so the trailing EOS keeps its list-run form.
                        results = list(results)
                    results.append(EOS)
                return results

            return function_pull_many

    # Generic fallback: loop the compiled per-item walker (locks, deep
    # producers over gates, mixed structures).  Still one scheduler
    # message per run at the pump level.
    item_pull = compile_pull(ctx, target)

    def generic_pull_many(n):
        run = []
        while len(run) < n:
            item = yield from item_pull()
            if item is NIL:
                break
            run.append(item)
            if item is EOS:
                break
        return run

    return generic_pull_many


def _run_data_count(run) -> int:
    """Data items in a run (excluding a trailing EOS; columnar runs are
    pure data by convention)."""
    count = len(run)
    if count and not getattr(run, "columnar", False) and run[-1] is EOS:
        count -= 1
    return count


def _compile_coro_pull_many(ctx: ThreadCtx, component):
    """Bound ip-pull-batch round trip: one crossing per run.

    Like the per-item crossing, binds a timed variant when telemetry is
    attached — weighted by the *items* inside the run (observe_count), so
    ``wait_p*`` summaries count items, not runs, at batch_max > 1 — and a
    flow variant when a tracer is attached.
    """
    engine = ctx.engine
    target = engine.thread_of(component)
    sender = ctx.thread_name
    thread = engine.scheduler.threads[sender]
    dispatch_event = ctx.dispatch_event_message
    counter = engine._switch_counter()
    hist = _coro_histogram(engine, component)

    def coro_pull_many(n):
        message = thread._current_message
        request = Message(
            kind="ip-pull-batch",
            payload=n,
            sender=sender,
            target=target,
            constraint=message.constraint if message is not None else None,
            needs_reply=True,
        )
        counter[0] += 1
        yield Send(request)
        rid = request.msg_id
        while True:
            reply = yield Receive(
                match=lambda m, _rid=rid: m.reply_to == _rid
                or m.kind == "event"
            )
            if reply.kind == "event":
                dispatch_event(reply)
                continue
            return reply.payload

    base = coro_pull_many
    if hist is not None:
        now = engine._telemetry.now

        def coro_pull_many_timed(n):
            start = now()
            run = yield from coro_pull_many(n)
            hist.observe_count(now() - start, _run_data_count(run) or 1)
            return run

        base = coro_pull_many_timed

    flow = engine._flow_tracer
    if flow is None:
        return base
    inner = base

    def coro_pull_many_flow(n):
        run = yield from inner(n)
        count = _run_data_count(run)
        if count:
            flow.transfer(target, sender, count)
        return run

    return coro_pull_many_flow


def _compile_coro_push_many(ctx: ThreadCtx, component):
    """Bound ip-push-batch round trip: one crossing per run.

    Timed/flow variants mirror :func:`_compile_coro_pull_many`; pushed
    runs are pure data, so the whole length counts.
    """
    engine = ctx.engine
    target = engine.thread_of(component)
    sender = ctx.thread_name
    thread = engine.scheduler.threads[sender]
    dispatch_event = ctx.dispatch_event_message
    counter = engine._switch_counter()
    hist = _coro_histogram(engine, component)

    def coro_push_many(items):
        message = thread._current_message
        request = Message(
            kind="ip-push-batch",
            payload=items,
            sender=sender,
            target=target,
            constraint=message.constraint if message is not None else None,
            needs_reply=True,
        )
        counter[0] += 1
        yield Send(request)
        rid = request.msg_id
        while True:
            reply = yield Receive(
                match=lambda m, _rid=rid: m.reply_to == _rid
                or m.kind == "event"
            )
            if reply.kind == "event":
                dispatch_event(reply)
                continue
            return

    base = coro_push_many
    if hist is not None:
        now = engine._telemetry.now

        def coro_push_many_timed(items):
            start = now()
            yield from coro_push_many(items)
            hist.observe_count(now() - start, len(items) or 1)

        base = coro_push_many_timed

    flow = engine._flow_tracer
    if flow is None:
        return base
    inner = base

    def coro_push_many_flow(items):
        flow.transfer(sender, target, len(items))
        yield from inner(items)

    return coro_push_many_flow


def compile_push_many(ctx: ThreadCtx, target: FlowTarget):
    """Compile ``target`` into a batch push walker ``(items) -> generator``
    delivering a non-empty pure-data run (the pump strips EOS and routes it
    through the per-item walker so fan-out/sink bookkeeping stays exact).
    """
    engine = ctx.engine
    if isinstance(target, BoundaryRef):
        component = target.component
        gate = engine.gate_for(component)
        port = target.port.name
        if gate is not None:
            put_many = gate.put_many

            def gate_push_many(items):
                return put_many(ctx, items, port)

            return gate_push_many

        take_cost = _bind_drain_fn(component)
        flow = engine._flow_tracer
        push_many_impl = getattr(component, "push_many", None)
        if push_many_impl is not None:
            # Coalescing sink (NetpipeSender): one frame per run.
            stats = component.stats

            def frame_sink_push_many(items):
                stats["items_in"] += len(items)
                push_many_impl(items)
                cost = take_cost()
                if cost > 0.0:
                    yield Work(cost)

            if flow is None or not getattr(component, "wire_sink", False):
                return frame_sink_push_many
            thread = ctx.thread_name

            def wire_sink_push_many(items):
                # Stage the run's contexts before the send so the frame
                # carries them as its trace-context side-chunk.
                flow.stage_wire(component, thread, len(items))
                yield from frame_sink_push_many(items)

            return wire_sink_push_many

        receive = _bind_receive_push(component, port)

        def sink_push_many(items):
            for item in items:
                receive(item)
            cost = take_cost()
            if cost > 0.0:
                yield Work(cost)

        if flow is None:
            return sink_push_many
        deliver_many = flow.deliver_many_fn(ctx.thread_name, component.name)

        def sink_push_many_traced(items):
            yield from sink_push_many(items)
            deliver_many(len(items))

        return sink_push_many_traced

    node_many = _compile_push_node_many(ctx, target)
    lock = engine.lock_for(target.component)
    if lock is None:
        return node_many
    acquire, release = lock.acquire, lock.release
    thread_name = ctx.thread_name

    def locked_push_many(items):
        # One acquire/release per run; same uncontended fast path as the
        # per-item locked_push.
        holder = lock.holder
        if holder == thread_name:
            yield from node_many(items)
            return
        if holder is None:
            lock.holder = thread_name
        else:
            yield from acquire(ctx)
        try:
            yield from node_many(items)
        finally:
            if lock._waiters:
                yield from release(ctx)
            else:
                lock.holder = None

    return locked_push_many


def _compile_push_node_many(ctx: ThreadCtx, node: FlowNode):
    engine = ctx.engine
    component = node.component

    if engine.is_coroutine(component):
        return _compile_coro_push_many(ctx, component)

    if component.style is Style.FUNCTION:
        out_many = compile_push_many(ctx, node.branches["out"])
        convert_many = _convert_many_fn(component)
        stats = component.stats
        take_cost = _bind_drain_fn(component)

        def function_push_many(items):
            stats["items_in"] += len(items)
            results = convert_many(items)
            stats["items_out"] += len(results)
            cost = take_cost()
            if cost > 0.0:
                yield Work(cost)
            yield from out_many(results)

        return function_push_many

    if len(node.branches) == 1:
        # Consumer with one out-branch: run user code for the whole batch,
        # then move the collected emissions downstream as one run.
        ((out_port, child),) = node.branches.items()
        child_many = compile_push_many(ctx, child)
        child_item = compile_push(ctx, child)
        receive = _bind_receive_push(component, node.entry_port)
        queue = engine.pending_for(component).queue
        take_cost = _bind_drain_fn(component)
        process_run = getattr(component, "process_run", None)

        def consumer_push_many(items):
            if process_run is not None and getattr(items, "columnar", False):
                # Vectorized consumer entry: the component transforms the
                # whole columnar run (updating its own stats, including
                # items_in/items_out and declared drops, exactly as the
                # per-item path would), or returns None to decline and
                # fall back to per-item receive().
                outs = process_run(items)
                if outs is not None:
                    cost = take_cost()
                    if cost > 0.0:
                        yield Work(cost)
                    if len(outs):
                        yield from child_many(outs)
                    return
            outs = []
            for item in items:
                receive(item)
                while queue:
                    _, out = queue.popleft()
                    outs.append(out)
            cost = take_cost()
            if cost > 0.0:
                yield Work(cost)
            if not outs:
                return
            for out in outs:
                if out is EOS or out is NIL:
                    # Control values among emissions: keep the per-item
                    # path so EOS fan-out bookkeeping stays exact.
                    for each in outs:
                        yield from child_item(each)
                    return
            yield from child_many(outs)

        return consumer_push_many

    # Multi-branch consumers/tees: per-item fallback over this node.
    item_push = _compile_push_node(ctx, node)

    def generic_push_many(items):
        for item in items:
            yield from item_push(item)

    return generic_push_many
