"""Pipeline execution on the message-based thread substrate (section 4).

The :class:`~repro.runtime.engine.Engine` takes a composed pipeline,
computes its :class:`~repro.core.glue.AllocationPlan`, and realizes it on a
:class:`~repro.mbt.scheduler.Scheduler`:

* one user-level thread per pump (or active endpoint);
* one additional thread per coroutine, with Infopipe push/pull between
  coroutines "mapped to asynchronous inter-thread messages" — the blocked
  thread stays responsive to control events;
* direct function calls for every component whose style matches its mode;
* buffer gates implementing the block/drop/nil policies;
* event delivery with synchronized-object semantics (section 3.2).
"""

from repro.runtime.batching import BatchPolicy, attach_adaptive_batching
from repro.runtime.engine import Engine, run_pipeline
from repro.runtime.stats import PipelineStats

__all__ = [
    "BatchPolicy",
    "Engine",
    "PipelineStats",
    "attach_adaptive_batching",
    "run_pipeline",
]
