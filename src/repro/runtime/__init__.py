"""Pipeline execution on the message-based thread substrate (section 4).

The :class:`~repro.runtime.engine.Engine` takes a composed pipeline,
computes its :class:`~repro.core.glue.AllocationPlan`, and realizes it on a
:class:`~repro.mbt.scheduler.Scheduler`:

* one user-level thread per pump (or active endpoint);
* one additional thread per coroutine, with Infopipe push/pull between
  coroutines "mapped to asynchronous inter-thread messages" — the blocked
  thread stays responsive to control events;
* direct function calls for every component whose style matches its mode;
* buffer gates implementing the block/drop/nil policies;
* event delivery with synchronized-object semantics (section 3.2).
"""

from repro.runtime.batching import BatchPolicy
from repro.runtime.batching import (
    attach_adaptive_batching as _attach_adaptive_batching,
)
from repro.runtime.engine import Engine
from repro.runtime.engine import run_pipeline as _run_pipeline
from repro.runtime.stats import PipelineStats


def run_pipeline(pipe, until=None, backend="generator", max_steps=None,
                 **engine_kwargs):
    """Deprecated: use ``repro.api.Pipeline.from_pipeline(pipe).run()``.

    Delegates to the original implementation unchanged (the golden
    traces pin its behaviour); only the entry point moved."""
    from repro._compat import warn_deprecated

    warn_deprecated(
        "repro.run_pipeline(...)",
        "repro.api.Pipeline.from_pipeline(pipe).run(until=...)",
    )
    return _run_pipeline(
        pipe, until=until, backend=backend, max_steps=max_steps,
        **engine_kwargs,
    )


def attach_adaptive_batching(engine, *args, **kwargs):
    """Deprecated: use
    ``repro.api.Pipeline.with_engine_options(batch_policy=...)`` or call
    :func:`repro.runtime.batching.attach_adaptive_batching` directly."""
    from repro._compat import warn_deprecated

    warn_deprecated(
        "repro.attach_adaptive_batching(...)",
        "repro.runtime.batching.attach_adaptive_batching(...) or the "
        "repro.api facade",
    )
    return _attach_adaptive_batching(engine, *args, **kwargs)


__all__ = [
    "BatchPolicy",
    "Engine",
    "PipelineStats",
    "attach_adaptive_batching",
    "run_pipeline",
]
