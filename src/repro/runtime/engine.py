"""The Infopipe engine: realizing an allocation plan on the thread package.

"The Infopipe platform creates a thread for each pump.  If there is no need
for coroutines in the pipeline section a pump controls, the thread calls the
pull functions of all components upstream of the pump, then calls push with
the returned item to the components downstream of the pump, and finally
returns to the pump, which schedules the next pull. ... If such coroutines
are needed, each of them is implemented by an additional thread of the
underlying thread package."  (paper, section 4)
"""

from __future__ import annotations

from typing import Any, Union

from repro.components.buffers import Buffer
from repro.core import events as ev
from repro.core.component import Component, Role
from repro.core.composition import Pipeline
from repro.core.events import EOS, Event, EventService
from repro.core.glue import (
    AllocationPlan,
    BoundaryRef,
    FlowNode,
    SectionPlan,
    allocate,
)
from repro.core.items import NIL
from repro.core.polarity import Mode
from repro.core.styles import EndOfStream, PullOp, PushOp, Style
from repro.errors import RuntimeFault
from repro.mbt.clock import Clock, VirtualClock
from repro.mbt.constraints import Constraint
from repro.mbt.coroutine import Done, Suspendable
from repro.mbt.message import Message
from repro.mbt.scheduler import Scheduler
from repro.mbt.syscalls import CONTINUE, Send, Work
from repro.mbt.timers import PeriodicTimer
from repro.runtime.batching import BatchPolicy
from repro.runtime.bridge import PendingEmits, ReplayIntake, build_suspendable
from repro.runtime.section import (
    BufferGate,
    SegmentLock,
    ThreadCtx,
    compile_pull,
    compile_pull_many,
    compile_push,
    compile_push_many,
    maybe_work,
    pull_from,
    push_to,
)
from repro.runtime.stats import PipelineStats

FlowTarget = Union[FlowNode, BoundaryRef]


class PumpDriver:
    """Runs one section: the pump's (or active endpoint's) thread."""

    def __init__(self, engine: "Engine", section: SectionPlan):
        self.engine = engine
        self.section = section
        self.origin = section.origin
        self.thread_name = f"pump:{self.origin.name}"
        self.ctx = ThreadCtx(engine, self.thread_name)
        self.timer: PeriodicTimer | None = None
        self.finished = False
        self.cycles = 0
        self.nil_cycles = 0
        self.items_moved = 0
        self.waiting_for_data = False
        self._loop_active = False
        self._pull_gates: list[BufferGate] = []
        #: Compiled flow walkers (bound by Engine._compile_walkers).
        self._pull_walker = None
        self._push_walker = None
        #: Batched data plane (bound only when the batch policy or a
        #: per-pump override allows batch_max > 1 on a greedy pump).
        self._pull_many = None
        self._push_many = None
        self._pump_batch_max: int | None = None
        self._cycle = self._run_cycle
        self.batches = 0
        self.batched_items = 0
        self.flush_full = 0
        self.flush_dry = 0
        self.flush_eos = 0
        self._origin_drain = self.origin.drain_cost
        self._max_items = getattr(self.origin, "max_items", None)
        self._cycle_constraint = self.data_constraint()
        #: Stage-latency instrumentation, bound by Telemetry.attach; None
        #: keeps the cycle path branch-predictable and allocation-free.
        self._obs_cycle = None
        self._obs_now = None
        #: Flow tracer, bound by FlowTracer.attach: active-endpoint
        #: births/deliveries plus the end-of-cycle sweep that attributes
        #: in-section losses.  None when tracing is off.
        self._flow = None
        #: Bound end-of-cycle sweep: the carried deque and fork-anchor
        #: cell are checked inline in the cycle loop; the closure
        #: (FlowTracer.cycle_end_fn) is the slow path for stranded
        #: sampled contexts.
        self._flow_carried = None
        self._flow_pending = None
        self._flow_last = None
        self._flow_cycle_end = None

    # -- setup -------------------------------------------------------------

    def setup(self) -> None:
        scheduler = self.engine.scheduler
        scheduler.spawn(
            self.thread_name, self.code, priority=self.origin.priority
        )
        if getattr(self.origin, "reservation", None):
            scheduler.reserve(self.thread_name, self.origin.reservation)
        if self.timing == "clocked":
            period = self.origin.period()
            if period is None:
                raise RuntimeFault(
                    f"{self.origin.name!r} is clocked but has no period"
                )
            slack = getattr(self.origin, "deadline_slack", None)
            constraint_fn = None
            if slack is not None:
                def constraint_fn(fire_time, _slack=slack):
                    return Constraint(
                        priority=self.origin.priority,
                        deadline=fire_time + _slack,
                    )
            self.timer = PeriodicTimer(
                scheduler,
                self.thread_name,
                period=period,
                kind="tick",
                constraint=self.data_constraint(),
                constraint_fn=constraint_fn,
            )
            rate_listener = getattr(self.origin, "_rate_listener", "absent")
            if rate_listener != "absent":
                self.origin._rate_listener = self._apply_rate
        self._pull_gates = [
            gate
            for gate in _boundary_gates(self.engine, self.section.pull_root)
        ]

    def compile_walkers(self) -> None:
        """(Re)build the section's bound flow walkers; see
        :func:`repro.runtime.section.compile_pull`."""
        section = self.section
        self._pull_walker = (
            compile_pull(self.ctx, section.pull_root)
            if section.pull_root is not None
            else None
        )
        self._push_walker = (
            compile_push(self.ctx, section.push_root)
            if section.push_root is not None
            else None
        )
        self._max_items = getattr(self.origin, "max_items", None)
        self._cycle_constraint = self.data_constraint()
        # Batch mode is a compile-time decision: only greedy pumps whose
        # effective batch limit exceeds 1 get the batched cycle and the
        # batch walkers.  At the default batch_max=1 nothing here runs,
        # so the per-item scheduler traces are reproduced bit-for-bit.
        policy = self.engine.batch_policy
        self._pump_batch_max = getattr(self.origin, "batch_max", None)
        limit = self._pump_batch_max or policy.batch_max
        if limit > 1 and self.timing == "greedy":
            self._pull_many = (
                compile_pull_many(self.ctx, section.pull_root)
                if section.pull_root is not None
                else None
            )
            self._push_many = (
                compile_push_many(self.ctx, section.push_root)
                if section.push_root is not None
                else None
            )
            self._cycle = self._run_cycle_batch
        else:
            self._pull_many = None
            self._push_many = None
            self._cycle = self._run_cycle

    @property
    def timing(self) -> str:
        return getattr(self.origin, "timing", "greedy")

    def data_constraint(self) -> Constraint | None:
        if self.origin.priority:
            return Constraint(priority=self.origin.priority)
        return None

    def _apply_rate(self, rate_hz: float) -> None:
        if self.timer is not None:
            self.timer.period = 1.0 / rate_hz

    # -- thread code function ------------------------------------------------

    def code(self, thread, message):
        """Plain dispatch: the hot path hands the scheduler a single
        ``_run_cycle`` generator per message instead of nesting one inside
        a ``code`` generator."""
        kind = message.kind
        if kind == "cycle":
            self.waiting_for_data = False
            if self.origin.running and not self.finished:
                return self._cycle(repost=True)
            self._loop_active = False
        elif kind == "tick":
            if self.origin.running and not self.finished:
                return self._cycle(repost=False)
        elif kind == "event":
            event, target_name = message.payload
            self.engine.dispatch_event_local(
                self.thread_name, event, target_name
            )
        self.sync_running_state()
        return CONTINUE

    def sync_running_state(self) -> None:
        running = self.origin.running and not self.finished
        if self.timer is not None:
            if running and not self.timer.running:
                self.timer.start()
            elif not running and self.timer.running:
                self.timer.stop()
        elif running and not self._loop_active and not self.waiting_for_data:
            self._loop_active = True
            self.engine.scheduler.post(
                Message(
                    kind="cycle",
                    sender=self.thread_name,
                    target=self.thread_name,
                    constraint=self.data_constraint(),
                )
            )

    # -- one cycle -----------------------------------------------------------

    def _run_cycle(self, repost: bool):
        """One pump cycle plus the post-cycle trailer (self-repost for the
        greedy loop, running-state resync) in a single generator."""
        self.cycles += 1
        origin = self.origin
        pull = self._pull_walker
        push = self._push_walker
        obs_cycle = self._obs_cycle
        if obs_cycle is not None:
            cycle_start = self._obs_now()

        if pull is not None:
            item = yield from pull()
        else:
            item = origin.generate()
            cost = self._origin_drain()
            if cost > 0.0:
                yield Work(cost)

        if item is NIL:
            self.nil_cycles += 1
            if self.timer is None:
                self._enter_waiting()
        elif item is EOS:
            if push is not None:
                yield from push(EOS)
            self.finish()
        else:
            flow = self._flow
            if pull is not None:
                origin.stats["items_in"] += 1
            else:
                origin.stats["items_out"] += 1
                if flow is not None:
                    # Active source: the item is born here, not in a
                    # compiled source walker.
                    flow.birth(self.thread_name)

            if push is not None:
                yield from push(item)
                if pull is not None:
                    origin.stats["items_out"] += 1
            else:
                # Active sink: consume in place.
                origin.consume(item)
                cost = self._origin_drain()
                if cost > 0.0:
                    yield Work(cost)
                if flow is not None:
                    flow.deliver(self.thread_name, origin.name, 1)

            if flow is not None:
                # Cycle epilogue, inlined: unsampled leftovers are just a
                # pending count (zeroed) or all-``None`` slots (one
                # C-level clear); only a stranded sampled context pays
                # the drain call.
                carried = self._flow_carried
                if carried:
                    if any(carried):
                        self._flow_cycle_end()
                    else:
                        carried.clear()
                self._flow_pending[0] = 0
                self._flow_last[0] = None
            self.items_moved += 1
            if obs_cycle is not None:
                obs_cycle.observe(self._obs_now() - cycle_start)
            max_items = self._max_items
            if max_items is not None and self.items_moved >= max_items:
                # A bounded origin ends the stream: tell downstream.
                if push is not None:
                    yield from push(EOS)
                self.finish()

        if repost:
            if (
                origin.running
                and not self.finished
                and not self.waiting_for_data
            ):
                name = self.thread_name
                yield Send(
                    Message(
                        kind="cycle",
                        sender=name,
                        target=name,
                        constraint=self._cycle_constraint,
                    )
                )
                # The loop is provably still active here (running, not
                # finished, not waiting, timerless): sync would be a no-op.
                return CONTINUE
            self._loop_active = False
        self.sync_running_state()
        return CONTINUE

    def _run_cycle_batch(self, repost: bool):
        """One batched pump cycle: drain up to the policy's batch size per
        scheduler message (tentpole of the batched data plane).

        The run conventions mirror the per-item cycle exactly — an empty
        run is a nil cycle, a trailing EOS ends the stream through the
        per-item push walker (so fan-out and sink bookkeeping stay exact),
        and stats count individual items.  The post-cycle trailer is
        identical to :meth:`_run_cycle`.
        """
        self.cycles += 1
        origin = self.origin
        pull_many = self._pull_many
        push_many = self._push_many
        obs_cycle = self._obs_cycle
        if obs_cycle is not None:
            cycle_start = self._obs_now()

        n = self._pump_batch_max
        if n is None:
            n = self.engine.batch_policy.current
        if n < 1:
            n = 1
        max_items = self._max_items
        if max_items is not None:
            headroom = max_items - self.items_moved
            if headroom < n:
                n = headroom if headroom > 0 else 1

        if pull_many is not None:
            run = yield from pull_many(n)
        else:
            # Active source: drain up to n generated items.
            run = []
            generate = origin.generate
            while len(run) < n:
                item = generate()
                if item is NIL:
                    break
                run.append(item)
                if item is EOS:
                    break
            cost = self._origin_drain()
            if cost > 0.0:
                yield Work(cost)

        eos = bool(run) and run[-1] is EOS
        data = run[:-1] if eos else run

        if data:
            count = len(data)
            flow = self._flow
            if pull_many is not None:
                origin.stats["items_in"] += count
            else:
                origin.stats["items_out"] += count
                if flow is not None:
                    flow.births(self.thread_name, count)

            if push_many is not None:
                yield from push_many(data)
                if pull_many is not None:
                    origin.stats["items_out"] += count
            else:
                # Active sink: consume in place.
                consume = origin.consume
                for item in data:
                    consume(item)
                cost = self._origin_drain()
                if cost > 0.0:
                    yield Work(cost)
                if flow is not None:
                    flow.deliver(self.thread_name, origin.name, count)

            if flow is not None:
                # Same inlined epilogue as the per-item cycle above.
                carried = self._flow_carried
                if carried:
                    if any(carried):
                        self._flow_cycle_end()
                    else:
                        carried.clear()
                self._flow_pending[0] = 0
                self._flow_last[0] = None
            self.items_moved += count
            self.batches += 1
            self.batched_items += count
            if eos:
                self.flush_eos += 1
            elif count >= n:
                self.flush_full += 1
            else:
                self.flush_dry += 1
            if obs_cycle is not None:
                # Weighted by the items inside the run, so stage-latency
                # percentiles in stats.summary() count items, not runs.
                obs_cycle.observe_count(
                    self._obs_now() - cycle_start, count
                )
        elif not eos:
            self.nil_cycles += 1
            if self.timer is None:
                self._enter_waiting()

        if eos or (
            max_items is not None and self.items_moved >= max_items
        ):
            push = self._push_walker
            if push is not None:
                yield from push(EOS)
            self.finish()

        if repost:
            if (
                origin.running
                and not self.finished
                and not self.waiting_for_data
            ):
                name = self.thread_name
                yield Send(
                    Message(
                        kind="cycle",
                        sender=name,
                        target=name,
                        constraint=self._cycle_constraint,
                    )
                )
                return CONTINUE
            self._loop_active = False
        self.sync_running_state()
        return CONTINUE

    def _enter_waiting(self) -> None:
        """Greedy pump found no data under a nil policy: sleep until any
        upstream gate sees a push."""
        self.waiting_for_data = True
        for gate in self._pull_gates:
            gate.idle_pumps.add(self.thread_name)

    def finish(self) -> None:
        self.finished = True
        self.origin.running = False
        if self.timer is not None:
            self.timer.stop()
        self.engine.note_section_finished(self)


class CoroutineDriver:
    """Runs one coroutine component on its own user-level thread.

    Push/pull to the component arrive as ``ip-push``/``ip-pull`` request
    messages; the driver resumes the component's suspendable body, serves
    its requests against the continuation subtree, and replies when the
    component next needs input (push mode) or has produced output (pull
    mode).
    """

    def __init__(
        self,
        engine: "Engine",
        component: Component,
        mode: Mode,
        node: FlowNode,
    ):
        self.engine = engine
        self.component = component
        self.mode = mode
        self.node = node
        self.thread_name = f"coro:{component.name}"
        self.ctx = ThreadCtx(engine, self.thread_name)
        self.susp: Suspendable | None = None
        self.started = False
        self.finished = False
        #: Pull-mode state: the last request the body is suspended at.
        self._at_push = False
        self._drain = component.drain_cost
        #: Compiled per-port continuation walkers (push mode uses push
        #: walkers, pull mode uses pull walkers); bound by
        #: Engine._compile_walkers.
        self._push_walkers: dict[str, Any] = {}
        self._pull_walkers: dict[str, Any] = {}

    def setup(self, priority: int) -> None:
        self.engine.scheduler.spawn(self.thread_name, self.code, priority)

    def compile_walkers(self) -> None:
        branches = self.node.branches
        if self.mode is Mode.PUSH:
            self._push_walkers = {
                port: compile_push(self.ctx, child)
                for port, child in branches.items()
            }
            self._pull_walkers = {}
        else:
            self._pull_walkers = {
                port: compile_pull(self.ctx, child)
                for port, child in branches.items()
            }
            self._push_walkers = {}

    def _suspendable(self) -> Suspendable:
        if self.susp is None:
            self.susp = build_suspendable(self.component, self.engine.backend)
        return self.susp

    def continuation(self, port: str) -> FlowTarget:
        try:
            return self.node.branches[port]
        except KeyError:
            raise RuntimeFault(
                f"{self.component.name!r} used unknown port {port!r}"
            ) from None

    # -- resume helpers ------------------------------------------------------

    def _resume(self, value: Any):
        """Resume the body; returns a request, or Done."""
        try:
            return self._suspendable().resume(value)
        except EndOfStream:
            return Done(None)

    def _start(self):
        self.started = True
        try:
            return self._suspendable().resume(None)
        except EndOfStream:
            return Done(None)

    def _resume_eos(self):
        """Deliver end-of-stream to the body: thrown into active bodies,
        passed as a value to the generated wrappers."""
        if self.component.style is Style.ACTIVE:
            try:
                return self._suspendable().throw(EndOfStream())
            except EndOfStream:
                return Done(None)
        return self._resume(EOS)

    # -- thread code function ------------------------------------------------

    def code(self, thread, message):
        """Plain dispatch returning the handler generator directly (its
        ``None`` return is accepted as CONTINUE by the scheduler)."""
        kind = message.kind
        if kind == "event":
            event, target_name = message.payload
            self.engine.dispatch_event_local(
                self.thread_name, event, target_name
            )
            return CONTINUE
        if kind == "ip-push" and self.mode is Mode.PUSH:
            return self._handle_push(message)
        if kind == "ip-pull" and self.mode is Mode.PULL:
            return self._handle_pull(message)
        if kind == "ip-push-batch" and self.mode is Mode.PUSH:
            return self._handle_push_batch(message)
        if kind == "ip-pull-batch" and self.mode is Mode.PULL:
            return self._handle_pull_batch(message)
        raise RuntimeFault(
            f"coroutine {self.component.name!r} ({self.mode} mode) got "
            f"unexpected message {message.kind!r}"
        )

    # -- push mode -------------------------------------------------------------

    def _handle_push(self, message: Message):
        from repro.mbt.syscalls import Reply

        if self.finished:
            yield Reply(message, "ok")
            return
        if not self.started:
            request = self._start()
            request = yield from self._drive_to_pull(request)
            if self.finished:
                yield Reply(message, "ok")
                return

        item = message.payload
        if item is EOS:
            request = self._resume_eos()
            while not self.finished:
                request = yield from self._drive_to_pull(request)
                if self.finished:
                    break
                # The body asked for more input after EOS: it stays ended.
                request = self._resume_eos()
            yield Reply(message, "ok")
            return

        if self.component.style is Style.ACTIVE:
            # Count on actual delivery, like pull mode does — the body's
            # *request* for input (its PullOp) may only ever be answered
            # by EOS, which is not an item.
            self.component.stats["items_in"] += 1
        request = self._resume(item)
        yield from self._drive_to_pull(request)
        yield Reply(message, "ok")

    def _handle_push_batch(self, message: Message):
        """One ip-push-batch crossing: feed every item of the run to the
        body, one resume/drive round per item (the payload is pure data —
        EOS always arrives through the per-item ``ip-push`` path)."""
        from repro.mbt.syscalls import Reply

        if self.finished:
            yield Reply(message, "ok")
            return
        if not self.started:
            request = self._start()
            request = yield from self._drive_to_pull(request)
            if self.finished:
                yield Reply(message, "ok")
                return

        active = self.component.style is Style.ACTIVE
        for item in message.payload:
            if self.finished:
                break
            if active:
                self.component.stats["items_in"] += 1
            request = self._resume(item)
            yield from self._drive_to_pull(request)
        yield Reply(message, "ok")

    def _drive_to_pull(self, request):
        """Serve PushOps downstream until the body wants input again."""
        push_walkers = self._push_walkers
        while True:
            cost = self._drain()
            if cost > 0.0:
                yield Work(cost)
            if isinstance(request, Done):
                yield from self._forward_eos_downstream()
                self.finished = True
                return None
            if isinstance(request, PushOp):
                if self.component.style is Style.ACTIVE:
                    # wrapper styles count via receive_push/serve_pull
                    self.component.stats["items_out"] += 1
                walker = push_walkers.get(request.port)
                if walker is None:
                    raise RuntimeFault(
                        f"{self.component.name!r} used unknown port "
                        f"{request.port!r}"
                    )
                yield from walker(request.item)
                request = self._resume(None)
                continue
            if isinstance(request, PullOp):
                return request
            raise RuntimeFault(
                f"{self.component.name!r} yielded unexpected {request!r}"
            )

    def _forward_eos_downstream(self):
        for walker in self._push_walkers.values():
            yield from walker(EOS)

    # -- pull mode --------------------------------------------------------------

    def _handle_pull(self, message: Message):
        from repro.mbt.syscalls import Reply

        if self.finished:
            yield Reply(message, EOS)
            return
        value = yield from self._next_output()
        yield Reply(message, value)

    def _handle_pull_batch(self, message: Message):
        """One ip-pull-batch crossing: collect up to n outputs before
        replying, with the same run conventions as the batch walkers
        (data first, at most one trailing EOS, [] means no data now)."""
        from repro.mbt.syscalls import Reply

        n = message.payload
        run = []
        while len(run) < n:
            if self.finished:
                run.append(EOS)
                break
            value = yield from self._next_output()
            if value is NIL:
                break
            run.append(value)
            if value is EOS:
                break
        yield Reply(message, run)

    def _next_output(self):
        """Advance the body to its next output item; returns the item, or
        EOS when the body finishes (setting ``finished``).  Exactly the
        serving loop ``_handle_pull`` always ran, factored out so the
        batch handler can call it repeatedly per crossing."""
        if not self.started:
            request = self._start()
        elif self._at_push:
            self._at_push = False
            request = self._resume(None)
        else:  # pragma: no cover - defensive
            request = self._resume(None)

        pull_walkers = self._pull_walkers
        while True:
            cost = self._drain()
            if cost > 0.0:
                yield Work(cost)
            if isinstance(request, Done):
                self.finished = True
                return EOS
            if isinstance(request, PushOp):
                self._at_push = True
                if self.component.style is Style.ACTIVE:
                    self.component.stats["items_out"] += 1
                return request.item
            if isinstance(request, PullOp):
                walker = pull_walkers.get(request.port)
                if walker is None:
                    raise RuntimeFault(
                        f"{self.component.name!r} used unknown port "
                        f"{request.port!r}"
                    )
                value = yield from walker()
                if value is EOS:
                    request = self._resume_eos()
                else:
                    if value is not NIL and \
                            self.component.style is Style.ACTIVE:
                        self.component.stats["items_in"] += 1
                    request = self._resume(value)
                continue
            raise RuntimeFault(
                f"{self.component.name!r} yielded unexpected {request!r}"
            )


def _boundary_gates(engine: "Engine", root: FlowTarget | None):
    """All buffer gates at the boundaries of a section side."""
    if root is None:
        return
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, BoundaryRef):
            gate = engine.gate_for(node.component)
            if gate is not None:
                yield gate
        else:
            stack.extend(node.branches.values())


class Engine:
    """Executes a pipeline: thread transparency made concrete.

    Parameters
    ----------
    pipe:
        The composed :class:`~repro.core.composition.Pipeline`.
    backend:
        ``"generator"`` (default; deterministic generator coroutines) or
        ``"thread"`` (OS-thread coroutine bodies with genuinely blocking
        calls, the paper-faithful programming model).
    clock:
        Scheduler clock; defaults to a virtual (discrete-event) clock.
    batch_policy / batch_max:
        The batched data plane's transmission policy (see
        :mod:`repro.runtime.batching`).  ``batch_max`` is shorthand for
        ``BatchPolicy(batch_max=...)``; the default of 1 keeps the
        per-item data plane (and its golden traces) exactly as-is.
    """

    def __init__(
        self,
        pipe: Pipeline,
        backend: str = "generator",
        clock: Clock | None = None,
        scheduler: Scheduler | None = None,
        trace: bool = False,
        on_thread_error: str = "raise",
        trace_limit: int | None = None,
        batch_policy: BatchPolicy | None = None,
        batch_max: int | None = None,
    ):
        if not isinstance(pipe, Pipeline):
            raise RuntimeFault("Engine requires a composed Pipeline")
        if batch_policy is not None and batch_max is not None:
            raise RuntimeFault("pass batch_policy or batch_max, not both")
        if batch_policy is None:
            batch_policy = BatchPolicy(batch_max=batch_max or 1)
        self.batch_policy = batch_policy
        self.pipeline = pipe
        self.backend = backend
        self.scheduler = scheduler or Scheduler(
            clock=clock or VirtualClock(),
            trace=trace,
            on_thread_error=on_thread_error,
            trace_limit=trace_limit,
        )
        self.events = EventService()
        self.plan: AllocationPlan | None = None

        self._gates: dict[Component, BufferGate] = {}
        self._locks: dict[Component, SegmentLock] = {}
        self._replays: dict[Component, ReplayIntake] = {}
        self._pendings: dict[Component, PendingEmits] = {}
        self._owner: dict[str, str] = {}
        self._thread_components: dict[str, dict[str, Component]] = {}
        self._coroutine_drivers: dict[Component, CoroutineDriver] = {}
        self.pump_drivers: list[PumpDriver] = []
        self._drivers_by_origin: dict[str, PumpDriver] = {}
        self.stats_counters: dict[str, int] = {"coroutine_switches": 0}
        #: Per-walker batched switch counters ([int] cells); flushed into
        #: ``stats_counters`` whenever ``stats`` is read or walkers are
        #: recompiled, so the hot path pays one list-cell increment instead
        #: of a dict update per coroutine crossing.
        self._switch_counters: list[list[int]] = []
        self._sink_eos: set[str] = set()
        self._setup_done = False
        #: Simulated network used for cross-node control-event latency.
        self.network = None
        #: Attached services (feedback loops, sensors) stopped by stop().
        self._services: list[Any] = []
        #: Observability front-end (repro.obs.Telemetry) when attached;
        #: None keeps every hook in the runtime inert.
        self._telemetry: Any = None
        #: Causal flow tracer (repro.obs.FlowTracer) when attached; the
        #: compiled walkers bind traced variants only while this is set.
        self._flow_tracer: Any = None
        #: Committed live restructurings (repro.runtime.restructure
        #: Replacement records), in application order — the audit trail
        #: refinement certificates archive.
        self.restructure_log: list[Any] = []

    def add_service(self, service: Any) -> None:
        """Register an auxiliary service whose ``stop()`` is called when the
        pipeline stops (feedback loops register themselves here)."""
        self._services.append(service)

    def attach_network(self, network) -> "Engine":
        """Tell the engine which simulated network connects its nodes, so
        control events between components on different nodes incur the
        network's control latency ("control events are delivered to remote
        components through the platform", section 2.4)."""
        self.network = network
        return self

    # ------------------------------------------------------------ setup

    def setup(self) -> "Engine":
        if self._setup_done:
            return self
        self.plan = allocate(self.pipeline)

        # Buffer gates first: boundary ownership needs them.
        for component in self.pipeline.components:
            if component.role is Role.BUFFER:
                self._gates[component] = BufferGate(self, component)

        # Pump drivers and ownership / coroutine drivers via tree walks.
        coroutine_stages = {
            stage.component: stage
            for section in self.plan.sections
            for stage in section.stages
            if stage.coroutine
        }
        for section in self.plan.sections:
            driver = PumpDriver(self, section)
            self.pump_drivers.append(driver)
            self._drivers_by_origin[section.origin.name] = driver
            self._own(section.origin, driver.thread_name)
            for root in (section.pull_root, section.push_root):
                if root is not None:
                    self._assign_owners(
                        root, driver.thread_name, coroutine_stages,
                        priority=section.origin.priority,
                    )

        # Spawn threads (pump after ownership so gates resolve).
        for driver in self.pump_drivers:
            driver.setup()

        # Segment locks for shared clusters.
        self._build_locks()

        # Event wiring.
        for component in self.pipeline.components:
            self._register_events(component)

        for component in self.pipeline.components:
            component.on_attach(self)

        # Compile the flow walkers last: gates, locks, replay intakes and
        # coroutine ownership are all settled by now.
        self._compile_walkers()
        self._setup_done = True
        return self

    def _compile_walkers(self) -> None:
        """(Re)compile every driver's bound flow walkers.

        Called at the end of setup and again after any structural change
        (see :func:`repro.runtime.restructure.replace_component`, which
        swaps ``node.component`` in place)."""
        self._flush_switches()
        self._switch_counters.clear()
        for driver in self.pump_drivers:
            driver.compile_walkers()
        for driver in self._coroutine_drivers.values():
            driver.compile_walkers()

    def _switch_counter(self) -> list:
        """A fresh batched coroutine-switch counter cell for a compiled
        walker (see ``stats_counters``)."""
        counter = [0]
        self._switch_counters.append(counter)
        return counter

    def _flush_switches(self) -> None:
        total = 0
        for counter in self._switch_counters:
            if counter[0]:
                total += counter[0]
                counter[0] = 0
        if total:
            self.stats_counters["coroutine_switches"] += total

    def _own(self, component: Component, thread_name: str) -> None:
        if component.name in self._owner:
            return  # first owner wins (shared components, buffers)
        self._owner[component.name] = thread_name
        self._thread_components.setdefault(thread_name, {})[
            component.name
        ] = component

    def _assign_owners(
        self,
        target: FlowTarget,
        owner_thread: str,
        coroutine_stages: dict,
        priority: int,
    ) -> None:
        if isinstance(target, BoundaryRef):
            self._own(target.component, owner_thread)
            return
        component = target.component
        if component in coroutine_stages:
            if component not in self._coroutine_drivers:
                driver = CoroutineDriver(
                    self, component, target.mode, target
                )
                driver.setup(priority)
                self._coroutine_drivers[component] = driver
                self._own(component, driver.thread_name)
            owner_thread = self._coroutine_drivers[component].thread_name
        else:
            self._own(component, owner_thread)
            if component.style is Style.CONSUMER or component.role is Role.TEE:
                if component.style is Style.CONSUMER:
                    self.pending_for(component)
            if component.style is Style.PRODUCER:
                self.replay_for(component)
        for child in target.branches.values():
            self._assign_owners(child, owner_thread, coroutine_stages, priority)

    def _build_locks(self) -> None:
        assert self.plan is not None
        shared = self.plan.shared_components
        if not shared:
            return
        # Connected clusters of shared components share one lock.
        remaining = set(shared)
        while remaining:
            seed = remaining.pop()
            cluster = {seed}
            stack = [seed]
            while stack:
                component = stack.pop()
                for port in component.ports.values():
                    if port.peer is None:
                        continue
                    neighbour = port.peer.component
                    if neighbour in remaining:
                        remaining.discard(neighbour)
                        cluster.add(neighbour)
                        stack.append(neighbour)
            lock = SegmentLock(name=f"segment:{seed.name}")
            for member in cluster:
                self._locks[member] = lock

    def _register_events(self, component: Component) -> None:
        owner = self._owner.get(component.name)
        if owner is None:
            return

        def deliver(event: Event, name=component.name, thread=owner):
            message = Message(
                kind="event",
                payload=(event, name),
                sender="event-service",
                target=thread,
                constraint=ev.EVENT_CONSTRAINT,
            )
            delay = self._event_delay(event, component)
            if delay > 0.0:
                self.scheduler.after(
                    delay, lambda: self.scheduler.post(message)
                )
            else:
                self.scheduler.post(message)

        self.events.register(component.name, deliver)
        component._event_sender = self._make_event_sender(component)

    def _event_delay(self, event: Event, receiver: Component) -> float:
        """Cross-node control latency for an event (0 locally)."""
        if self.network is None or not event.source:
            return 0.0
        try:
            source = self.pipeline.component(event.source)
        except Exception:
            return 0.0
        src_loc = getattr(source, "location", "")
        dst_loc = getattr(receiver, "location", "")
        if not src_loc or not dst_loc or src_loc == dst_loc:
            return 0.0
        return self.network.control_latency(src_loc, dst_loc)

    def _make_event_sender(self, component: Component):
        def sender(event: Event):
            if event.scope is ev.EventScope.BROADCAST:
                self.events.broadcast(event)
                return
            if event.scope is ev.EventScope.DIRECT:
                self.events.send_to(event.target, event)
                return
            ports = (
                component.in_ports()
                if event.scope is ev.EventScope.UPSTREAM
                else component.out_ports()
            )
            if not ports or ports[0].peer is None:
                raise RuntimeFault(
                    f"{component.name!r} has no {event.scope.value} neighbour"
                )
            self.events.send_to(ports[0].peer.component.name, event)

        return sender

    # ------------------------------------------------------------ accessors

    def gate_for(self, component: Component) -> BufferGate | None:
        return self._gates.get(component)

    def lock_for(self, component: Component) -> SegmentLock | None:
        return self._locks.get(component)

    def replay_for(self, component: Component) -> ReplayIntake:
        replay = self._replays.get(component)
        if replay is None:
            replay = ReplayIntake([p.name for p in component.in_ports()])
            replay.install(component)
            self._replays[component] = replay
        return replay

    def pending_for(self, component: Component) -> PendingEmits:
        pending = self._pendings.get(component)
        if pending is None:
            pending = PendingEmits()
            pending.install(component)
            self._pendings[component] = pending
        return pending

    def is_coroutine(self, component: Component) -> bool:
        return component in self._coroutine_drivers

    def thread_of(self, component: Component) -> str:
        driver = self._coroutine_drivers.get(component)
        if driver is not None:
            return driver.thread_name
        owner = self._owner.get(component.name)
        if owner is None:
            raise RuntimeFault(f"{component.name!r} has no owning thread")
        return owner

    def dispatch_event_local(
        self, thread_name: str, event: Event, target_name: str | None
    ) -> None:
        owned = self._thread_components.get(thread_name, {})
        if target_name is None:
            for component in owned.values():
                component.handle_event(event)
                self._sync_origin(component)
            return
        component = owned.get(target_name)
        if component is not None:
            component.handle_event(event)
            self._sync_origin(component)

    def _sync_origin(self, component: Component) -> None:
        """If an event just changed an activity origin's running state —
        possibly while its thread is blocked mid-cycle — resync its timer
        immediately, so a stopped pump's clock stops ticking."""
        driver = self._drivers_by_origin.get(component.name)
        if driver is not None:
            driver.sync_running_state()

    def note_sink_eos(self, component: Component) -> None:
        self._sink_eos.add(component.name)

    def note_section_finished(self, driver: PumpDriver) -> None:
        pass  # hook for subclasses/telemetry

    # ------------------------------------------------------------ control

    def send_event(self, kind: str, payload: Any = None) -> None:
        """Broadcast a control event to every component (like the paper's
        ``send_event(START)``)."""
        self.setup()
        self.events.broadcast(Event(kind=kind, payload=payload, source=""))

    def start(self) -> "Engine":
        self.setup()
        self.send_event(ev.START)
        return self

    def stop(self) -> "Engine":
        for service in self._services:
            stop = getattr(service, "stop", None)
            if stop is not None:
                stop()
        self.send_event(ev.STOP)
        return self

    def run(self, until: float | None = None, max_steps: int | None = None) -> "Engine":
        self.setup()
        self.scheduler.run(until=until, max_steps=max_steps)
        return self

    def run_to_completion(self, max_steps: int | None = None) -> "Engine":
        """Start the pipeline and run until it goes quiescent (finite flows
        end by EOS; infinite flows need ``run(until=...)`` + ``stop()``)."""
        self.start()
        self.scheduler.run(max_steps=max_steps)
        return self

    def run_with_io(
        self,
        io: Any,
        idle_timeout: float = 0.05,
        max_steps: int | None = None,
        horizon: float = 1.0,
    ) -> "Engine":
        """Run to completion while pumping an external I/O source — the
        shard-local main loop of a multi-process deployment
        (:mod:`repro.deploy`).

        ``io`` is anything with ``pump() -> int`` (drain ready inbound
        messages into the pipeline, returning how many arrived),
        ``wait(timeout) -> bool`` (block until inbound bytes or timeout)
        and optionally ``should_stop() -> bool`` (external shutdown, e.g.
        a control message from the deployment parent).  The loop
        alternates scheduler runs with I/O pumping: the scheduler runs
        until quiescent, arrivals wake the boundary gates
        (``external_wake_pullers``), and the pipeline completes when
        every pump driver finished — which for a downstream shard means
        its netpipe receivers saw the cross-process EOS.

        Each scheduler run is bounded to ``horizon`` virtual seconds: a
        periodic timer (a clocked pump waiting on wire data) keeps the
        scheduler non-quiescent forever, so an unbounded run would never
        hand control back to the I/O pump.  Each shard's virtual clock
        is local and free-running, so burning through idle virtual time
        while real bytes are in flight only skews timestamps, never the
        data flow.
        """
        self.setup()
        should_stop = getattr(io, "should_stop", None)
        while True:
            until = self.scheduler.clock.now() + horizon
            self.scheduler.run(until=until, max_steps=max_steps)
            if self.completed:
                return self
            if io.pump():
                continue
            if should_stop is not None and should_stop():
                return self
            if not io.wait(idle_timeout):
                continue

    @property
    def completed(self) -> bool:
        return bool(self.pump_drivers) and all(
            d.finished for d in self.pump_drivers
        )

    def now(self) -> float:
        return self.scheduler.now()

    # ------------------------------------------------------------ stats

    @property
    def stats(self) -> PipelineStats:
        self._flush_switches()
        retained = {}
        for component in self.pipeline.components:
            level = getattr(component, "fill_level", None)
            if isinstance(level, int) and level > 0:
                retained[component.name] = level
        batching = {}
        for driver in self.pump_drivers:
            if driver.batches:
                batching[driver.origin.name] = {
                    "batches": driver.batches,
                    "items": driver.batched_items,
                    "avg_batch": driver.batched_items / driver.batches,
                    "flush_full": driver.flush_full,
                    "flush_dry": driver.flush_dry,
                    "flush_eos": driver.flush_eos,
                }
        snapshot = PipelineStats(
            components={
                c.name: dict(c.stats) for c in self.pipeline.components
            },
            batching=batching,
            retained=retained,
            context_switches=self.scheduler.context_switches,
            coroutine_switches=self.stats_counters["coroutine_switches"],
            messages_delivered=self.scheduler.messages_delivered,
            cycles={d.origin.name: d.cycles for d in self.pump_drivers},
            nil_cycles={
                d.origin.name: d.nil_cycles for d in self.pump_drivers
            },
            time=self.scheduler.now(),
            threads=len(self.pump_drivers) + len(self._coroutine_drivers),
            dead_letters=len(self.scheduler.dead_letters),
            dead_letters_dropped=self.scheduler.dead_letters_dropped,
        )
        if self._telemetry is not None:
            self._telemetry.decorate(snapshot)
        return snapshot


def run_pipeline(
    pipe: Pipeline,
    until: float | None = None,
    backend: str = "generator",
    max_steps: int | None = None,
    **engine_kwargs: Any,
) -> Engine:
    """Convenience: build an engine, start the pipeline, run it.

    With ``until`` the pipeline runs to that virtual time and is stopped;
    without it, it runs to completion (finite sources).
    """
    engine = Engine(pipe, backend=backend, **engine_kwargs)
    engine.start()
    if until is not None:
        engine.run(until=until, max_steps=max_steps)
        engine.stop()
        engine.run(max_steps=max_steps)
    else:
        engine.run(max_steps=max_steps)
    return engine
