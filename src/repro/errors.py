"""Exception hierarchy for the Infopipes middleware.

All framework errors derive from :class:`InfopipeError`, so applications can
catch middleware failures with a single ``except`` clause while still being
able to distinguish composition-time problems (raised while a pipeline is
being wired up) from run-time problems (raised while data is flowing).
"""

from __future__ import annotations


class InfopipeError(Exception):
    """Base class of every error raised by the framework."""


# ---------------------------------------------------------------------------
# Composition-time errors
# ---------------------------------------------------------------------------

class CompositionError(InfopipeError):
    """A pipeline could not be assembled from the given components."""


class PolarityError(CompositionError):
    """Two ports with the same fixed polarity were connected.

    The paper (section 2.3): "ports with opposite polarity may be connected,
    but an attempt to connect two ports with the same polarity is an error".
    """


class TypespecMismatch(CompositionError):
    """The Typespecs on either side of a connection have no common flow."""

    def __init__(self, message: str, conflicts: dict | None = None):
        super().__init__(message)
        #: Mapping of property name -> (left value, right value) for every
        #: property whose intersection was empty.
        self.conflicts = dict(conflicts or {})


class PortError(CompositionError):
    """A port was used incorrectly (already connected, unknown name, ...)."""


class AllocationError(CompositionError):
    """The glue layer could not assign threads/coroutines to a pipeline.

    Typical causes: a pipeline section without any pump or active endpoint,
    a section with two competing activity origins, or a multi-port component
    used in a mode its activity rules forbid (section 3.3).
    """


# ---------------------------------------------------------------------------
# Run-time errors
# ---------------------------------------------------------------------------

class RuntimeFault(InfopipeError):
    """Base class for errors raised while a pipeline is running."""


class SchedulerError(RuntimeFault):
    """The user-level thread scheduler detected an inconsistency."""


class DeadlockError(SchedulerError):
    """No thread is runnable but work remains outstanding."""


class InjectedFault(RuntimeFault):
    """A deliberately injected failure (fault-injection harness).

    Raised into threads by :meth:`repro.mbt.scheduler.Scheduler.inject_crash`
    and used by :mod:`repro.check.faults` so injected crashes are
    distinguishable from genuine component failures.
    """


class InvariantViolation(RuntimeFault, AssertionError):
    """A flow invariant (conservation, FIFO order) was violated.

    Also an :class:`AssertionError`, so plain pytest machinery and the
    schedule explorer's failure accounting both treat it as a test failure.
    """


class RefinementViolation(InvariantViolation):
    """A transformed pipeline produced a sink stream its original cannot.

    Raised by :func:`repro.check.refine.check_refinement` when some
    explored schedule of the concrete pipeline yields a projected sink
    sequence that no witness schedule of the abstract pipeline reproduces
    (exactly for conserving channels, as a subsequence for declared-lossy
    ones).  The message names the channel, the first divergent sink index
    and — for lossy channels — the declared loss reasons.
    """


class ChannelClosed(RuntimeFault):
    """A push or pull was attempted on a terminated pipeline section."""


class MarshalError(RuntimeFault):
    """An item could not be encoded to, or decoded from, the wire format."""


class RemoteError(RuntimeFault):
    """A remote factory or binding operation failed."""


class FeedbackError(RuntimeFault):
    """A feedback loop was mis-configured (unknown sensor/actuator, ...)."""


class DeployError(InfopipeError):
    """A deployment could not be planned or executed (illegal cut point,
    unbalanced placement, shard worker failure, ...)."""
