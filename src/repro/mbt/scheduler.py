"""Deterministic priority scheduler for message-based user-level threads.

One :class:`Scheduler` owns a set of :class:`~repro.mbt.thread.MThread`
objects, a clock and a timer wheel.  It repeatedly picks the ready thread
with the most urgent effective constraint and runs it until it blocks
(receive/sleep), completes its current message, or is preempted.

Preemption happens at yield points (every syscall) and *during* simulated
CPU work (:class:`~repro.mbt.syscalls.Work`), so a high-priority audio pump
interrupts a long-running video decode exactly as the paper requires
("threads can be preempted in favor of threads driven by other pumps").

With the default :class:`~repro.mbt.clock.VirtualClock` execution is a pure
discrete-event simulation: deterministic, repeatable, and far faster than
real time.

The ready queue
---------------
Dispatch used to scan every thread and recompute its sort key on every
pick and every preemption check — O(n) with fresh allocations each time.
The scheduler now maintains an **indexed ready queue**: a binary heap of
``[prio, vtime, deadline, last_ran, index, seq, thread]`` entries, one
live entry per ready thread.  Whenever an event changes a thread's key or readiness
(message delivery, receive, donation, message start/finish, wait set or
cleared, priority change) the thread notifies the scheduler via
:meth:`_reindex`, which tombstones the old entry (lazily discarded at the
heap top) and pushes a fresh one.  ``_pick_ready`` and
``_exists_more_urgent_ready`` are then heap peeks — O(1) amortised, O(log
n) worst case — and, because the entry key embeds the same
``(sort key, last_ran, index)`` tuple the linear scan used, the pick order
is *bit-for-bit identical* to the reference linear scan
(:meth:`_pick_ready_linear`, kept for the property-based equivalence
tests).

Weighted-fair multi-tenancy
---------------------------
The ``vtime`` key component implements start-time fair queueing across
**tenants** (sessions multiplexed onto one scheduler by
:mod:`repro.fabric`).  Threads with no tenant carry ``vtime == 0.0``, so
the key degenerates to the original ``(prio, deadline, last_ran, index)``
order and single-session schedules stay bit-for-bit identical (pinned by
the golden traces).  A tenanted thread is keyed by its tenant's virtual
time; each dispatch charges the tenant ``1 / weight``, so a hot tenant's
threads drift later in the queue and every backlogged tenant receives CPU
in proportion to its weight.  Priorities still dominate (vtime only
orders threads of equal effective priority), and a tenant waking from
idle is clamped to the scheduler's fair clock so it cannot burst on
banked credit.  Parked threads (quiesced sessions, see
:meth:`park_thread`) are excluded from ``is_ready`` and therefore hold no
heap entry at all: dispatch cost is independent of the number of idle
sessions, and :meth:`unpark_thread` is a single heap push.

Checking hooks
--------------
Three optional hooks exist solely for the deterministic-simulation
toolkit in :mod:`repro.check`; each is a single ``is not None`` test on
the relevant path and therefore free when unused:

* :attr:`Scheduler.choice_hook` — called by ``_pick_ready`` (and the
  linear oracle) with the list of *equally most urgent* ready threads
  whenever there is more than one; it returns the thread to dispatch.
  Because only ties are delegated, every schedule the hook can produce
  is one the priority/constraint semantics already allow — the schedule
  explorer perturbs exactly this choice.
* :attr:`Scheduler.delivery_interceptor` — called by ``_deliver`` with
  each message before it is enqueued; may drop or delay it (fault
  injection at mailbox granularity, see :mod:`repro.check.faults`).
* :meth:`Scheduler.inject_crash` — kills a live thread through the
  normal ``_crash`` path, as if its code function had raised.

Observability hooks
-------------------
Two further optional facilities serve :mod:`repro.obs` and cost nothing
when unused:

* :attr:`Scheduler._obs` — a probe object (normally
  :class:`repro.obs.sched.SchedulerProbe`) whose ``on_dispatch`` /
  ``on_cpu`` / ``on_wall`` / ``on_donation`` / ``on_constraint`` methods
  are invoked from the dispatch path, each behind an ``is not None``
  test.  With no probe installed the trace stream and timing are
  bit-for-bit what they were before the hooks existed (the golden trace
  tests pin this).
* Bounded tracing — ``trace_limit`` (or :meth:`enable_trace` with a
  limit) keeps the trace in a ring (``deque(maxlen=...)``) instead of an
  unbounded list, counting evictions in :attr:`trace_dropped`.  This is
  the substrate of :class:`repro.obs.recorder.FlightRecorder`.
"""

from __future__ import annotations

import heapq
import inspect
import itertools
from collections import deque
from time import perf_counter as _perf_counter
from typing import Any, Callable, Iterable

from repro.errors import InjectedFault, SchedulerError
from repro.mbt.clock import Clock, VirtualClock
from repro.mbt.constraints import Constraint
from repro.mbt.message import Message
from repro.mbt.syscalls import (
    CONTINUE,
    TERMINATE,
    TIMED_OUT,
    Call,
    Exit,
    Receive,
    Reply,
    Send,
    Sleep,
    Syscall,
    WaitUntil,
    Work,
    Yield,
)
from repro.mbt.thread import MThread, WaitState

_INF = float("inf")

_EPS = 1e-12

#: Pre-bound for the dispatch hot path (module attribute lookups add up).
_isgenerator = inspect.isgenerator

#: Default bound on the dead-letter queue; beyond it the oldest letters are
#: dropped (and counted), so week-long runs cannot grow memory unboundedly.
DEAD_LETTER_LIMIT = 1000


class TimerHandle:
    """Cancellable handle returned by :meth:`Scheduler.at`."""

    __slots__ = ("when", "callback", "cancelled")

    def __init__(self, when: float, callback: Callable[[], None]):
        self.when = when
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Tenant:
    """Fair-share accounting unit for a group of threads (one session).

    ``weight`` sets the tenant's share of the scheduler relative to other
    backlogged tenants; ``vtime`` is its virtual finish time, advanced by
    ``1 / weight`` per dispatch.  Threads are attached via
    :meth:`Scheduler.assign_tenant`.
    """

    __slots__ = ("name", "_weight", "_inv_weight", "vtime", "dispatches")

    def __init__(self, name: str, weight: float = 1.0):
        if weight <= 0:
            raise SchedulerError(f"tenant weight must be positive, got {weight}")
        self.name = name
        self._weight = float(weight)
        self._inv_weight = 1.0 / float(weight)
        self.vtime = 0.0
        self.dispatches = 0

    @property
    def weight(self) -> float:
        return self._weight

    @weight.setter
    def weight(self, value: float) -> None:
        if value <= 0:
            raise SchedulerError(f"tenant weight must be positive, got {value}")
        self._weight = float(value)
        self._inv_weight = 1.0 / float(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Tenant {self.name!r} weight={self._weight} "
            f"vtime={self.vtime:.3f} dispatches={self.dispatches}>"
        )


class Scheduler:
    """Runs user-level threads over a virtual or real clock."""

    def __init__(
        self,
        clock: Clock | None = None,
        trace: bool = False,
        on_thread_error: str = "raise",
        dead_letter_limit: int | None = DEAD_LETTER_LIMIT,
        trace_limit: int | None = None,
        fair_quantum: int = 1,
    ):
        if on_thread_error not in ("raise", "collect"):
            raise ValueError("on_thread_error must be 'raise' or 'collect'")
        if fair_quantum < 1:
            raise ValueError("fair_quantum must be >= 1")
        self.clock = clock if clock is not None else VirtualClock()
        # Bound once: tracing and probe hooks stamp times on every event,
        # and the attribute chain is measurable there.
        self._clock_now = self.clock.now
        self.threads: dict[str, MThread] = {}
        #: Undeliverable messages, newest last; bounded by
        #: ``dead_letter_limit`` (None = unbounded).
        self.dead_letters: deque[Message] = deque(maxlen=dead_letter_limit)
        #: Dead letters evicted because the queue was full.
        self.dead_letters_dropped = 0
        self.errors: list[tuple[str, BaseException]] = []
        self.on_thread_error = on_thread_error

        #: Number of times the CPU moved from one thread to another.
        self.context_switches = 0
        #: Number of thread dispatches performed.
        self.steps = 0
        #: Total messages delivered.
        self.messages_delivered = 0

        self._timer_heap: list[tuple[float, int, TimerHandle]] = []
        self._timer_seq = itertools.count()
        self._thread_seq = itertools.count()
        self._run_seq = itertools.count(1)
        self._last_running: MThread | None = None
        #: Event trace: None (off), a list (unbounded), or a ring
        #: (``deque(maxlen=trace_limit)``) keeping only the newest events.
        self._trace: Any = None
        if trace or trace_limit is not None:
            self._trace = [] if trace_limit is None else deque(maxlen=trace_limit)
        #: Events evicted from a bounded trace ring.
        self.trace_dropped = 0
        #: Observability probe (see module docstring); None = uninstrumented.
        self._obs: Any = None
        self._reservations: dict[str, float] = {}

        #: Indexed ready queue: heap of [prio, vtime, deadline, last_ran,
        #: index, seq, thread] entries.  A tombstoned entry has thread
        #: slot None.
        self._ready_heap: list[list] = []
        self._ready_seq = itertools.count()
        #: Tombstoned entries still sitting in the heap.  Lazy invalidation
        #: only discards tombstones that reach the top, so key churn on
        #: threads that rarely get picked (priority flapping under a
        #: feedback controller) can grow the heap without bound; once
        #: tombstones outnumber live entries 2:1 the heap is compacted.
        self._ready_stale = 0
        #: The thread currently being dispatched (kept out of the heap).
        self._current: MThread | None = None

        #: Tie-break hook for schedule exploration (see module docstring):
        #: ``hook(candidates) -> MThread`` with ``candidates`` the equally
        #: most urgent ready threads in the default dispatch order, so
        #: ``candidates[0]`` is what the unhooked scheduler would pick.
        self.choice_hook: Callable[[list[MThread]], MThread] | None = None
        #: Fault-injection hook: ``interceptor(message)`` returning None
        #: (deliver now), ``"drop"``, or a positive delay in seconds.
        self.delivery_interceptor: Callable[[Message], Any] | None = None
        #: Messages discarded by the delivery interceptor.
        self.messages_dropped = 0

        #: Weighted-fair tenants by name (see :class:`Tenant`); empty when
        #: no fabric is multiplexing sessions onto this scheduler.
        self._tenants: dict[str, Tenant] = {}
        #: Virtual start time of the most recently dispatched tenanted
        #: thread; waking tenants are clamped to it (minus ``_fair_lag``)
        #: so idleness does not bank credit.
        self._fair_clock = 0.0
        #: How far behind the fair clock a waking tenant may start; 0.0 is
        #: strict start-time fair queueing.
        self._fair_lag = 0.0
        #: Dispatch quantum for tenanted threads: how many consecutive
        #: dispatches a tenant may burst before the fair order is
        #: re-evaluated.  1 (the default) is strict per-dispatch fairness;
        #: larger values amortize ready-queue maintenance over the burst
        #: (the fabric's multi-tenant hot path) at the cost of quantum-
        #: bounded short-term unfairness.  Virtual-time *charging* stays
        #: per-dispatch, so long-run weighted shares are unaffected.
        self.fair_quantum = int(fair_quantum)
        #: Active burst: the tenanted thread currently holding the CPU
        #: between fair re-evaluations, and how many dispatches remain.
        self._burst_thread: MThread | None = None
        self._burst_left = 0
        #: Set when a deadline-constrained entry enters the ready heap;
        #: aborts any burst so EDF urgency is never deferred behind a
        #: quantum (priority urgency needs no flag: a more-urgent
        #: priority always surfaces at the heap top).
        self._deadline_push = False
        #: Parked (quiesced) threads; they hold no ready-heap entry, so
        #: dispatch cost is independent of the number of idle sessions.
        self._parked: set[MThread] = set()

    # ------------------------------------------------------------ threads

    def add_thread(self, thread: MThread) -> MThread:
        if thread.name in self.threads:
            raise SchedulerError(f"duplicate thread name {thread.name!r}")
        thread._index = next(self._thread_seq)
        thread._scheduler = self
        self.threads[thread.name] = thread
        self._reindex(thread)
        return thread

    def spawn(self, name: str, code, priority: int = 0) -> MThread:
        """Create, register and return a new thread."""
        return self.add_thread(MThread(name=name, code=code, priority=priority))

    def remove_thread(self, name: str) -> None:
        thread = self.threads.pop(name, None)
        if thread is not None:
            thread.terminated = True
            thread.clear_execution_state()

    def blocked_threads(self) -> list[MThread]:
        return [t for t in self.threads.values() if t.is_blocked()]

    # ------------------------------------------------------------ tenants

    def add_tenant(self, name: str, weight: float = 1.0) -> Tenant:
        """Get or create the fair-share :class:`Tenant` called ``name``.

        An existing tenant keeps its virtual time but adopts the new
        ``weight`` (weights are live-tunable).
        """
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = Tenant(name, weight)
            self._tenants[name] = tenant
        elif tenant.weight != weight:
            tenant.weight = weight
        return tenant

    def remove_tenant(self, name: str) -> None:
        """Drop a tenant; its remaining threads revert to untenanted."""
        tenant = self._tenants.pop(name, None)
        if tenant is None:
            return
        for thread in self.threads.values():
            if thread._tenant is tenant:
                thread._tenant = None
                self._reindex(thread)

    @property
    def tenants(self) -> dict[str, Tenant]:
        return dict(self._tenants)

    def assign_tenant(self, thread: MThread, tenant: Tenant | str | None) -> None:
        """Attach ``thread`` to a tenant (or detach with ``None``)."""
        if isinstance(tenant, str):
            tenant = self.add_tenant(tenant)
        thread._tenant = tenant
        self._reindex(thread)

    # ------------------------------------------------------------ parking

    def park_thread(self, thread: MThread) -> None:
        """Quiesce ``thread``: not ready, holds no ready-heap entry.

        Parked threads cost the dispatcher nothing — the microbench in
        ``benchmarks`` asserts dispatch cost is independent of how many
        threads are parked.  Messages delivered meanwhile queue in the
        mailbox and run on :meth:`unpark_thread`.
        """
        if thread.parked:
            return
        thread.parked = True
        self._parked.add(thread)
        self._reindex(thread)  # tombstones any live entry

    def unpark_thread(self, thread: MThread) -> None:
        """O(1) wake: clear the parked flag and push one heap entry."""
        if not thread.parked:
            return
        thread.parked = False
        self._parked.discard(thread)
        self._reindex(thread)

    @property
    def parked_threads(self) -> set[MThread]:
        return set(self._parked)

    # ------------------------------------------------------------ reservations

    def reserve(self, name: str, cpu_fraction: float) -> None:
        """Record a CPU reservation; raises when over-committed.

        The paper's pumps "can make reservations, if supported, according to
        estimated or worst case execution times of the pipeline stages they
        run".  The virtual scheduler implements the admission check.
        """
        if cpu_fraction <= 0:
            raise SchedulerError("reservation must be positive")
        committed = sum(self._reservations.values()) - self._reservations.get(name, 0.0)
        if committed + cpu_fraction > 1.0 + _EPS:
            raise SchedulerError(
                f"reservation of {cpu_fraction:.3f} for {name!r} rejected: "
                f"{committed:.3f} already committed"
            )
        self._reservations[name] = cpu_fraction

    def release_reservation(self, name: str) -> None:
        self._reservations.pop(name, None)

    @property
    def reservations(self) -> dict[str, float]:
        return dict(self._reservations)

    # ------------------------------------------------------------ messaging

    def post(self, message: Message) -> None:
        """Inject a message from outside the scheduler (tests, devices)."""
        self._deliver(message)

    def post_many(self, messages: Iterable[Message]) -> None:
        """Inject a run of messages.

        Delivery order, interception, and tracing are identical to calling
        :meth:`post` once per message — this exists so batch producers
        (e.g. a buffer gate waking a run of consumers) make one scheduler
        call per run instead of one per message.
        """
        deliver = self._deliver
        for message in messages:
            deliver(message)

    def _deliver(self, message: Message) -> None:
        interceptor = self.delivery_interceptor
        if interceptor is not None:
            action = interceptor(message)
            if action is not None:
                if action == "drop":
                    self.messages_dropped += 1
                    if self._trace is not None:
                        self._record(
                            "fault-drop", message.kind,
                            message.sender, message.target,
                        )
                    return
                # A positive number delays the message; the re-delivery
                # bypasses the interceptor (one fault per message).
                self.after(float(action), lambda: self._deliver_now(message))
                return
        self._deliver_now(message)

    def _deliver_now(self, message: Message) -> None:
        target = self.threads.get(message.target)
        if target is None or target.terminated:
            letters = self.dead_letters
            if letters.maxlen is not None and len(letters) == letters.maxlen:
                self.dead_letters_dropped += 1
            letters.append(message)
            return
        self.messages_delivered += 1
        trace = self._trace
        if trace is not None:
            # _record inlined: "deliver" is one of the three per-message
            # event kinds, and the call overhead shows up in the
            # flight-recorder benchmarks.
            if type(trace) is deque and len(trace) == trace.maxlen:
                self.trace_dropped += 1
            trace.append((
                self._clock_now(), "deliver",
                message.kind, message.sender, message.target,
            ))
        wait = target._wait
        if (
            wait is not None
            and wait.kind == "receive"
            and (wait.match is None or wait.match(message))
        ):
            if wait.timer is not None:
                wait.timer.cancel()
            target._wait = None
            target._resume_value = message
            target._readiness_changed()
        else:
            target.mailbox.put(message)  # mailbox listener reindexes

    # ------------------------------------------------------------ timers

    def now(self) -> float:
        return self.clock.now()

    def at(self, when: float, callback: Callable[[], None]) -> TimerHandle:
        handle = TimerHandle(when, callback)
        heapq.heappush(self._timer_heap, (when, next(self._timer_seq), handle))
        return handle

    def after(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        return self.at(self.clock.now() + delay, callback)

    def _next_timer_time(self) -> float | None:
        while self._timer_heap and self._timer_heap[0][2].cancelled:
            heapq.heappop(self._timer_heap)
        return self._timer_heap[0][0] if self._timer_heap else None

    def _fire_due_timers(self) -> None:
        now = self.clock.now()
        while self._timer_heap and self._timer_heap[0][0] <= now + _EPS:
            _, _, handle = heapq.heappop(self._timer_heap)
            if not handle.cancelled:
                handle.callback()

    # ------------------------------------------------------------ main loop

    def run(
        self,
        until: float | None = None,
        max_steps: int | None = None,
    ) -> None:
        """Run until quiescent, until virtual time ``until``, or ``max_steps``.

        Quiescent means: no thread is ready and no timer is pending.  Threads
        blocked in a receive without timeout (servers awaiting requests) do
        not keep the scheduler alive.
        """
        while True:
            if max_steps is not None and self.steps >= max_steps:
                return
            if until is not None and self.clock.now() > until + _EPS:
                # Hard horizon: once time passed `until` (e.g. simulated
                # work overran it), stop even if threads are still ready.
                return
            thread = self._pick_ready()
            if thread is None:
                next_t = self._next_timer_time()
                if next_t is None:
                    return
                if until is not None and next_t > until + _EPS:
                    if until > self.clock.now():
                        self.clock.advance_to(until)
                    return
                self.clock.advance_to(next_t)
                self._fire_due_timers()
                continue
            self._run_thread(thread)

    def run_until_idle(self, max_steps: int | None = None) -> None:
        self.run(until=None, max_steps=max_steps)

    # ------------------------------------------------------------ ready queue

    def _reindex(self, thread: MThread) -> None:
        """Refresh ``thread``'s entry in the ready heap.

        Tombstones any previous entry (discarded lazily at the heap top)
        and, when the thread is ready and not currently dispatched, pushes
        a fresh entry keyed exactly like the reference linear scan:
        ``(*effective_sort_key(), last_ran, index)``.
        """
        if thread is self._current:
            # Deferred: _run_thread refreshes the entry once the dispatch
            # settles (see _reindex_after_dispatch), so mid-dispatch key
            # churn — the self-repost of every pump cycle — costs nothing.
            return
        entry = thread._heap_entry
        if entry is not None:
            entry[6] = None
            thread._heap_entry = None
            stale = self._ready_stale + 1
            self._ready_stale = stale
            # Lazy invalidation only pops tombstones that surface at the
            # heap top; mid-heap ones from key churn on rarely-picked
            # threads would otherwise accumulate without bound.
            if stale > 64 and 3 * stale > 2 * len(self._ready_heap):
                self._compact_ready_heap()
        if thread.terminated or not thread.is_ready():
            return
        if self._obs is not None and thread._ready_since is None:
            thread._ready_since = self._clock_now()
        key = thread.effective_sort_key()
        tenant = thread._tenant
        if tenant is None:
            vtime = 0.0
        else:
            vtime = tenant.vtime
            floor = self._fair_clock - self._fair_lag
            if vtime < floor:
                # Waking from idle: no banked credit past the lag bound.
                vtime = tenant.vtime = floor
        entry = [
            key[0],
            vtime,
            key[1],
            thread._last_ran,
            thread._index,
            next(self._ready_seq),
            thread,
        ]
        thread._heap_entry = entry
        heapq.heappush(self._ready_heap, entry)
        if key[1] != _INF and self._burst_thread is not None:
            self._deadline_push = True

    def _reindex_after_dispatch(self, thread: MThread) -> None:
        """Refresh the dispatched thread's heap entry (hot path).

        Mid-burst (``fair_quantum`` > 1) the refresh is skipped entirely:
        the stale entry stays in the heap and ``_pick_ready`` hands the
        CPU straight back, so a quantum of Q touches the heap once per Q
        dispatches instead of once per dispatch.
        """
        if (
            thread is self._burst_thread
            and self._burst_left > 0
            and not self._deadline_push
            and self.choice_hook is None
            and not thread.terminated
            and thread.is_ready()
        ):
            return
        if thread is self._burst_thread:
            self._burst_thread = None
            self._burst_left = 0
        self._refresh_entry(thread)

    def _refresh_entry(self, thread: MThread) -> None:
        """Re-key the dispatched thread's heap entry.

        The thread came off the heap top and — in the steady state of a
        saturated fabric — goes straight back with a later virtual time.
        When its pre-dispatch entry is still sitting at ``heap[0]`` the
        swap is a single :func:`heapq.heapreplace` sift instead of the
        generic tombstone + push + lazy-pop triple, which halves the
        heap traffic per dispatch at thousand-tenant scale.
        """
        heap = self._ready_heap
        entry = thread._heap_entry
        if thread.terminated or not thread.is_ready():
            if entry is not None:
                entry[6] = None
                thread._heap_entry = None
                stale = self._ready_stale + 1
                self._ready_stale = stale
                if stale > 64 and 3 * stale > 2 * len(heap):
                    self._compact_ready_heap()
            return
        if self._obs is not None and thread._ready_since is None:
            thread._ready_since = self._clock_now()
        key = thread.effective_sort_key()
        tenant = thread._tenant
        if tenant is None:
            vtime = 0.0
        else:
            vtime = tenant.vtime
            floor = self._fair_clock - self._fair_lag
            if vtime < floor:
                # Waking from idle: no banked credit past the lag bound.
                vtime = tenant.vtime = floor
        new_entry = [
            key[0],
            vtime,
            key[1],
            thread._last_ran,
            thread._index,
            next(self._ready_seq),
            thread,
        ]
        thread._heap_entry = new_entry
        if entry is not None:
            if heap and heap[0] is entry:
                entry[6] = None
                heapq.heapreplace(heap, new_entry)
                return
            # Displaced mid-heap (hooked pick, or a more urgent arrival
            # sifted past it): fall back to tombstone + push.
            entry[6] = None
            self._ready_stale += 1
        heapq.heappush(heap, new_entry)

    def _compact_ready_heap(self) -> None:
        """Rebuild the ready heap without tombstones.

        The live entry *objects* are kept (``thread._heap_entry``
        references stay valid); only the dead ones are dropped.
        """
        heap = [entry for entry in self._ready_heap if entry[6] is not None]
        heapq.heapify(heap)
        self._ready_heap = heap
        self._ready_stale = 0

    def _pick_ready(self) -> MThread | None:
        if self.choice_hook is not None:
            if self._burst_thread is not None:
                self._finish_burst()
            return self._pick_ready_hooked()
        burst = self._burst_thread
        if burst is not None:
            if (
                self._burst_left > 0
                and not self._deadline_push
                and not burst.terminated
                and burst.is_ready()
            ):
                top = self._peek_live()
                if top is None or top[6] is burst:
                    self._burst_left -= 1
                    return burst
                # Someone displaced the burst thread's (stale) entry at
                # the top.  Keep bursting unless the rival is strictly
                # more urgent ignoring virtual time — quantum-bounded
                # vtime unfairness is the whole point, but priority and
                # deadline urgency rotate immediately.
                key = burst.effective_sort_key()
                if not (
                    top[0] < key[0]
                    or (top[0] == key[0] and top[2] < key[1])
                ):
                    self._burst_left -= 1
                    return burst
            self._finish_burst()
        heap = self._ready_heap
        while heap:
            thread = heap[0][6]
            if thread is None:
                heapq.heappop(heap)
                self._ready_stale -= 1
                continue
            if self.fair_quantum > 1 and thread._tenant is not None:
                self._burst_thread = thread
                self._burst_left = self.fair_quantum - 1
                self._deadline_push = False
            return thread
        return None

    def _peek_live(self) -> list | None:
        heap = self._ready_heap
        while heap:
            entry = heap[0]
            if entry[6] is None:
                heapq.heappop(heap)
                self._ready_stale -= 1
                continue
            return entry
        return None

    def _finish_burst(self) -> None:
        """End the active burst and perform its deferred heap refresh."""
        thread = self._burst_thread
        self._burst_thread = None
        self._burst_left = 0
        if thread is not None:
            self._refresh_entry(thread)

    def _ready_candidates(self) -> list[MThread]:
        """The equally most urgent ready threads, default dispatch order.

        ``candidates[0]`` is exactly the thread the heap (or linear) pick
        would return; any other candidate shares its ``(priority, vtime,
        deadline)`` key, so dispatching it instead is a legal schedule.
        """
        best: tuple[float, float, float] | None = None
        candidates: list[MThread] = []
        for thread in self.threads.values():
            if not thread.is_ready():
                continue
            sort_key = thread.effective_sort_key()
            tenant = thread._tenant
            key = (
                sort_key[0],
                tenant.vtime if tenant is not None else 0.0,
                sort_key[1],
            )
            if best is None or key < best:
                best, candidates = key, [thread]
            elif key == best:
                candidates.append(thread)
        candidates.sort(key=lambda t: (t._last_ran, t._index))
        return candidates

    def _pick_ready_hooked(self) -> MThread | None:
        candidates = self._ready_candidates()
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        return self.choice_hook(candidates)

    def _exists_more_urgent_ready(self, current: MThread) -> bool:
        heap = self._ready_heap
        while heap:
            entry = heap[0]
            if entry[6] is None:
                heapq.heappop(heap)
                self._ready_stale -= 1
                continue
            if entry[6] is current:
                # The dispatched thread's own pre-charge entry is not a
                # rival; evict it (the post-dispatch refresh re-inserts).
                heapq.heappop(heap)
                current._heap_entry = None
                continue
            key = current.effective_sort_key()
            tenant = current._tenant
            vtime = tenant.vtime if tenant is not None else 0.0
            return entry[0] < key[0] or (
                entry[0] == key[0]
                and (
                    entry[1] < vtime
                    or (entry[1] == vtime and entry[2] < key[1])
                )
            )
        return False

    def _other_ready(self, current: MThread) -> bool:
        heap = self._ready_heap
        while heap:
            occupant = heap[0][6]
            if occupant is None:
                heapq.heappop(heap)
                self._ready_stale -= 1
                continue
            if occupant is current:
                # The dispatched thread's own live entry; see
                # _exists_more_urgent_ready.
                heapq.heappop(heap)
                current._heap_entry = None
                continue
            return True
        return False

    # -- reference implementations (equivalence oracle for tests) ----------

    def _pick_ready_linear(self) -> MThread | None:
        """The original O(n) scan; must pick exactly what the heap picks."""
        if self.choice_hook is not None:
            return self._pick_ready_hooked()
        best: MThread | None = None
        best_key: tuple | None = None
        for thread in self.threads.values():
            if not thread.is_ready():
                continue
            sort_key = thread.effective_sort_key()
            tenant = thread._tenant
            key = (
                sort_key[0],
                tenant.vtime if tenant is not None else 0.0,
                sort_key[1],
                thread._last_ran,
                thread._index,
            )
            if best_key is None or key < best_key:
                best, best_key = thread, key
        return best

    def _fair_key_linear(self, thread: MThread) -> tuple[float, float, float]:
        sort_key = thread.effective_sort_key()
        tenant = thread._tenant
        return (
            sort_key[0],
            tenant.vtime if tenant is not None else 0.0,
            sort_key[1],
        )

    def _exists_more_urgent_ready_linear(self, current: MThread) -> bool:
        current_key = self._fair_key_linear(current)
        for thread in self.threads.values():
            if thread is current or not thread.is_ready():
                continue
            if self._fair_key_linear(thread) < current_key:
                return True
        return False

    # ------------------------------------------------------------ dispatch

    def _run_thread(self, thread: MThread) -> None:
        if self._last_running is not thread:
            self.context_switches += 1
            if self._trace is not None:
                self._record(
                    "switch",
                    self._last_running.name if self._last_running else None,
                    thread.name,
                )
            self._last_running = thread
        self.steps += 1
        thread._last_ran = next(self._run_seq)

        tenant = thread._tenant
        if tenant is not None:
            # Start-time fair queueing: the fair clock follows the virtual
            # start of the thread in service; the tenant is then charged
            # one quantum scaled by its weight.
            self._fair_clock = tenant.vtime
            tenant.vtime += tenant._inv_weight
            tenant.dispatches += 1

        obs = self._obs
        if obs is not None:
            obs.on_dispatch(thread, self._clock_now())
            wall_start = _perf_counter()

        # The thread's heap entry stays live (usually at heap[0]) for the
        # duration of the dispatch; _reindex defers to the post-dispatch
        # refresh below, and the heap-top scans treat it as non-rival.
        self._current = thread
        try:
            # Inlined _dispatch (one frame fewer on the per-message path).
            if thread._pending_work > 0.0:
                if not self._do_work(thread):
                    return  # preempted mid-work; remainder pending
                # fall through and resume the generator with the stored value
            if thread._gen is not None:
                self._drive(thread)
                return
            message = thread.mailbox.get()
            if message is None:
                return
            thread._current_message = message
            thread._key_cache = None
            if obs is not None and message.constraint is not None:
                obs.on_constraint(thread.name)
            trace = self._trace
            if trace is not None:
                # _record inlined (per-message hot path).
                if type(trace) is deque and len(trace) == trace.maxlen:
                    self.trace_dropped += 1
                trace.append((
                    self._clock_now(), "dispatch", thread.name, message.kind,
                ))
            try:
                result = thread.code(thread, message)
            except Exception as exc:
                self._crash(thread, exc)
                return
            if _isgenerator(result):
                thread._gen = result
                self._drive(thread, first=True)
            else:
                self._finish_message(thread, result)
        finally:
            self._current = None
            self._reindex_after_dispatch(thread)
            if obs is not None:
                obs.on_wall(thread, _perf_counter() - wall_start)

    def _drive(self, thread: MThread, first: bool = False) -> None:
        """Advance the thread's generator until it blocks or completes."""
        gen = thread._gen
        value, exc = thread._resume_value, thread._resume_exc
        thread._resume_value = None
        thread._resume_exc = None

        while True:
            # -- one generator step -----------------------------------------
            try:
                if exc is not None:
                    pending_exc, exc = exc, None
                    request = gen.throw(pending_exc)
                elif first:
                    first = False
                    request = next(gen)
                else:
                    request = gen.send(value)
            except StopIteration as stop:
                self._finish_message(thread, stop.value)
                return
            except Exception as error:
                self._crash(thread, error)
                return
            value = None

            request_type = type(request)

            if request_type is Send:
                message = request.message
                if not message.sender:
                    message.sender = thread.name
                self._deliver(message)
                if message.target == thread.name and thread._tenant is not None:
                    # A tenanted thread re-posting to itself (the greedy
                    # pump loop): with many backlogged tenants some peer
                    # is ALWAYS more urgent, and preempting here would
                    # strand the continuation's trailing bookkeeping in a
                    # second, do-nothing dispatch — doubling the fabric's
                    # per-item dispatch cost.  The tenant was charged at
                    # dispatch start; finishing the generator now steals
                    # nothing.  Untenanted threads keep the preemption
                    # point, bit-for-bit.
                    continue
                if self._preempt_if_needed(thread):
                    return
                continue

            if request_type is Receive:
                message = thread.mailbox.get(request.match)
                if message is not None:
                    value = message
                    continue
                self._block_receive(
                    thread,
                    request.match,
                    request.timeout,
                    waiting_on=getattr(request.match, "waiting_on", None),
                )
                return

            if request_type is Reply:
                reply = request.to.make_reply(request.payload)
                thread.revoke_donation(request.to.msg_id)
                self._deliver(reply)
                if self._preempt_if_needed(thread):
                    return
                continue

            if request_type is Work:
                thread._pending_work = float(request.duration)
                thread._resume_value = None
                if not self._do_work(thread):
                    return  # preempted; scheduler resumes the work later
                if self._preempt_if_needed(thread):
                    return
                value = None
                continue

            if request_type is Call:
                message = Message(
                    kind=request.kind,
                    payload=request.payload,
                    sender=thread.name,
                    target=request.target,
                    constraint=self._call_constraint(thread, request),
                    needs_reply=True,
                )
                callee = self.threads.get(request.target)
                if callee is not None and not callee.terminated:
                    inherited = Constraint(
                        priority=int(thread.effective_priority())
                        if thread.effective_priority() != float("inf")
                        else thread.priority
                    )
                    callee.donate(message.msg_id, inherited)
                    if self._obs is not None:
                        self._obs.on_donation(callee.name)
                self._deliver(message)
                request_id = message.msg_id
                self._block_receive(
                    thread,
                    lambda m, _rid=request_id: m.reply_to == _rid,
                    request.timeout,
                    waiting_on=request.target,
                    reason=f"reply to {request.kind!r} call",
                )
                return

            if request_type is Sleep:
                self._block_until(thread, self.clock.now() + request.duration)
                return

            if request_type is WaitUntil:
                if request.when <= self.clock.now() + _EPS:
                    value = None
                    continue
                self._block_until(thread, request.when)
                return

            if request_type is Yield:
                thread._resume_value = None
                if self._other_ready(thread):
                    return
                value = None
                continue

            if request_type is Exit:
                self._finish_message(thread, TERMINATE)
                return

            if not isinstance(request, Syscall):
                self._crash(
                    thread,
                    SchedulerError(
                        f"thread {thread.name!r} yielded non-syscall {request!r}"
                    ),
                )
                return

            self._crash(
                thread,
                SchedulerError(f"unhandled syscall {request!r}"),
            )
            return

    # ------------------------------------------------------------ helpers

    @staticmethod
    def _call_constraint(thread: MThread, request: Call) -> Constraint | None:
        if request.constraint is not None:
            return request.constraint
        current = thread._current_message
        if current is not None and current.constraint is not None:
            # Messages sent on behalf of a constrained message inherit its
            # constraint (paper: "Messages between coroutines inherit the
            # constraint from the message received by the sending component").
            return current.constraint
        return None

    def _block_receive(
        self,
        thread,
        match,
        timeout,
        waiting_on: str | None = None,
        reason: str | None = None,
    ) -> None:
        wait = WaitState(
            kind="receive", match=match, waiting_on=waiting_on, reason=reason
        )
        if timeout is not None:
            def on_timeout(t=thread, w=wait):
                if t._wait is w:
                    t._wait = None
                    t._resume_value = TIMED_OUT
                    t._readiness_changed()

            wait.timer = self.after(timeout, on_timeout)
        thread._wait = wait
        thread._readiness_changed()
        if self._trace is not None:
            self._record("block", thread.name, "receive")

    def _block_until(self, thread: MThread, when: float) -> None:
        wait = WaitState(kind="time")

        def on_wake(t=thread, w=wait):
            if t._wait is w:
                t._wait = None
                t._resume_value = None
                t._readiness_changed()

        wait.timer = self.at(when, on_wake)
        thread._wait = wait
        thread._readiness_changed()
        if self._trace is not None:
            self._record("block", thread.name, "time")

    def _do_work(self, thread: MThread) -> bool:
        """Consume the thread's pending CPU work; False when preempted."""
        while thread._pending_work > _EPS:
            now = self.clock.now()
            target = now + thread._pending_work
            next_t = self._next_timer_time()
            if next_t is None or next_t >= target - _EPS:
                self.clock.advance_to(target)
                if self._obs is not None:
                    self._obs.on_cpu(thread.name, target - now)
                thread._pending_work = 0.0
                return True
            self.clock.advance_to(next_t)
            thread._pending_work -= next_t - now
            if self._obs is not None:
                self._obs.on_cpu(thread.name, next_t - now)
            self._fire_due_timers()
            if self._exists_more_urgent_ready(thread):
                if self._trace is not None:
                    self._record("preempt", thread.name)
                return False
        thread._pending_work = 0.0
        return True

    def _preempt_if_needed(self, thread: MThread) -> bool:
        if self._exists_more_urgent_ready(thread):
            thread._resume_value = None
            if self._trace is not None:
                self._record("preempt", thread.name)
            return True
        return False

    def _finish_message(self, thread: MThread, result: Any) -> None:
        thread._gen = None
        thread._current_message = None
        thread._resume_value = None
        thread._resume_exc = None
        thread._key_cache = None
        trace = self._trace
        if trace is not None:
            # _record inlined (per-message hot path).
            if type(trace) is deque and len(trace) == trace.maxlen:
                self.trace_dropped += 1
            trace.append((self._clock_now(), "done", thread.name))
        if result is TERMINATE:
            thread.terminated = True
            thread.clear_execution_state()
            if self._trace is not None:
                self._record("terminate", thread.name)
        elif result is not CONTINUE and result is not None:
            self._crash(
                thread,
                SchedulerError(
                    f"thread {thread.name!r} returned {result!r}; expected "
                    "CONTINUE or TERMINATE"
                ),
            )

    def inject_crash(self, name: str, exc: BaseException | None = None) -> bool:
        """Crash a live thread as if its code function had raised.

        Fault-injection entry for :mod:`repro.check.faults`: the thread
        dies through the normal ``_crash`` path (state cleared, error
        collected or raised per ``on_thread_error``).  Returns False when
        no live thread by that name exists.
        """
        thread = self.threads.get(name)
        if thread is None or thread.terminated:
            return False
        if exc is None:
            exc = InjectedFault(f"injected crash of thread {name!r}")
        self._crash(thread, exc)
        return True

    def _crash(self, thread: MThread, exc: BaseException) -> None:
        thread.crashed = exc
        thread.terminated = True
        thread.clear_execution_state()
        self.errors.append((thread.name, exc))
        if self._trace is not None:
            self._record("crash", thread.name, repr(exc))
        if self.on_thread_error == "raise":
            raise SchedulerError(f"thread {thread.name!r} crashed") from exc

    # ------------------------------------------------------------ tracing

    def enable_trace(self, limit: int | None = None) -> None:
        """Start tracing (unbounded list, or a ring of ``limit`` events).

        A no-op when tracing is already on — an existing unbounded trace
        subsumes any ring, and an existing ring keeps its capacity.
        """
        if self._trace is None:
            self._trace = [] if limit is None else deque(maxlen=limit)

    def _record(self, *event: Any) -> None:
        trace = self._trace
        if trace is not None:
            if type(trace) is deque and len(trace) == trace.maxlen:
                self.trace_dropped += 1
            trace.append((self._clock_now(), *event))

    @property
    def trace(self):
        """The event trace: a list, or a ``deque`` when ring-bounded."""
        if self._trace is None:
            raise SchedulerError("tracing was not enabled")
        return self._trace

    def trace_events(self, kind: str) -> Iterable[tuple]:
        return [event for event in self.trace if event[1] == kind]
