"""Clocks for the scheduler.

The default :class:`VirtualClock` advances only when the scheduler tells it
to, giving fully deterministic discrete-event execution: a one-hour media
session simulates in milliseconds and every test run is reproducible.  The
:class:`RealClock` wraps ``time.monotonic`` for interactive demos.
"""

from __future__ import annotations

import time


class Clock:
    """Abstract clock interface used by the scheduler."""

    def now(self) -> float:
        raise NotImplementedError

    def advance_to(self, when: float) -> None:
        """Move time forward to ``when`` (no-op for real clocks)."""
        raise NotImplementedError

    @property
    def is_virtual(self) -> bool:
        return False


class VirtualClock(Clock):
    """Discrete-event simulated time, starting at ``start`` seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    _BACKWARD_TOLERANCE = 1e-9

    def advance_to(self, when: float) -> None:
        if when < self._now:
            # Tolerate float rounding from accumulated advances; anything
            # larger is a real scheduling bug.
            if self._now - when > self._BACKWARD_TOLERANCE:
                raise ValueError(
                    f"virtual time cannot move backwards: "
                    f"{when} < {self._now}"
                )
            return
        self._now = when

    @property
    def is_virtual(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VirtualClock t={self._now:.6f}>"


class RealClock(Clock):
    """Wall-clock time based on ``time.monotonic``.

    ``advance_to`` sleeps until the requested time, so pipelines drive real
    devices at their nominal rates.
    """

    def __init__(self):
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin

    def advance_to(self, when: float) -> None:
        delay = when - self.now()
        if delay > 0:
            time.sleep(delay)
