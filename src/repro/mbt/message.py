"""Messages exchanged between user-level threads.

All inter-thread communication in the substrate is message passing: data
items crossing coroutine boundaries, control events, timer ticks, network
packet arrivals and OS signals are all delivered as :class:`Message` objects
("allowing all types of events to be handled by a uniform message interface",
paper section 4).
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.mbt.constraints import Constraint

_message_ids = itertools.count(1)
_next_message_id = _message_ids.__next__


class Message:
    """A single message.

    Attributes
    ----------
    kind:
        Application-defined tag used for dispatch (e.g. ``"tick"``,
        ``"push"``, ``"pull-reply"``, ``"event"``).
    payload:
        Arbitrary data carried by the message.
    sender:
        Name of the sending thread, or a platform tag such as ``"timer"`` or
        ``"network"`` for external events mapped to messages.
    target:
        Name of the destination thread.
    constraint:
        Optional scheduling constraint; see :mod:`repro.mbt.constraints`.
    reply_to:
        For replies, the ``msg_id`` of the request being answered.
    needs_reply:
        True for synchronous sends, where the sender blocks awaiting a reply.
    """

    __slots__ = (
        "kind",
        "payload",
        "sender",
        "target",
        "constraint",
        "reply_to",
        "needs_reply",
        "msg_id",
    )

    def __init__(
        self,
        kind: str,
        payload: Any = None,
        sender: str = "",
        target: str = "",
        constraint: Constraint | None = None,
        reply_to: int | None = None,
        needs_reply: bool = False,
    ):
        self.kind = kind
        self.payload = payload
        self.sender = sender
        self.target = target
        self.constraint = constraint
        self.reply_to = reply_to
        self.needs_reply = needs_reply
        self.msg_id = _next_message_id()

    def make_reply(self, payload: Any = None, kind: str | None = None) -> "Message":
        """Build the reply to this message, preserving its constraint."""
        return Message(
            kind=kind if kind is not None else self.kind + "-reply",
            payload=payload,
            sender=self.target,
            target=self.sender,
            constraint=self.constraint,
            reply_to=self.msg_id,
        )

    def is_reply_to(self, request: "Message") -> bool:
        return self.reply_to == request.msg_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" reply_to={self.reply_to}" if self.reply_to is not None else ""
        return (
            f"<Message #{self.msg_id} {self.kind!r} "
            f"{self.sender or '?'}->{self.target or '?'}{extra}>"
        )
