"""Per-thread message queues ordered by constraint urgency.

Messages carrying a more urgent constraint overtake less urgent ones, which
is how control events reach a component before queued data items (paper
section 2.2: control handlers "are executed with higher priority than
potentially long-running data processing").  Messages of equal urgency are
delivered in arrival order.

The queue is a binary heap of ``(priority, deadline, seq, message)``
entries.  Selective receive (``get(match)``) is a *single ordered pass*:
entries are popped in delivery order until one matches; the skipped
prefix is then restored (it is popped in sorted order, so when the whole
heap was drained it is already heap-shaped and is adopted wholesale).
This replaces the old ``sorted()`` + ``remove()`` + ``heapify()`` pattern,
which paid O(n log n) + O(n) + O(n) on *every* selective receive — e.g.
on every synchronous ``Call`` reply.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Iterator

from repro.mbt.message import Message


class Mailbox:
    """Priority queue of messages with selective receive."""

    __slots__ = ("_heap", "_seq", "_listener")

    def __init__(self):
        self._heap: list[tuple[float, float, int, Message]] = []
        self._seq = itertools.count()
        #: Optional zero-arg callback fired whenever the queue contents
        #: change; the scheduler uses it to invalidate the owning thread's
        #: cached sort key and ready-queue membership.
        self._listener: Callable[[], None] | None = None

    @staticmethod
    def _urgency(message: Message) -> tuple[float, float]:
        if message.constraint is None:
            return (0.0, math.inf)
        return message.constraint.sort_key()

    def put(self, message: Message) -> None:
        prio, deadline = self._urgency(message)
        heapq.heappush(self._heap, (prio, deadline, next(self._seq), message))
        if self._listener is not None:
            self._listener()

    def put_many(self, messages: list[Message]) -> None:
        """Enqueue a run of messages with ONE listener notification.

        Ordering is identical to calling :meth:`put` per message (the seq
        counter still advances one per message); only the change callback
        — and hence the owner's reindexing work — is coalesced.
        """
        heap = self._heap
        seq = self._seq
        urgency = self._urgency
        for message in messages:
            prio, deadline = urgency(message)
            heapq.heappush(heap, (prio, deadline, next(seq), message))
        if messages and self._listener is not None:
            self._listener()

    def peek(self) -> Message | None:
        return self._heap[0][3] if self._heap else None

    def get(self, match: Callable[[Message], bool] | None = None) -> Message | None:
        """Remove and return the first message, or first matching message.

        Returns ``None`` when nothing (matching) is queued.
        """
        heap = self._heap
        if not heap:
            return None
        if match is None:
            message = heapq.heappop(heap)[3]
            if self._listener is not None:
                self._listener()
            return message

        # Single ordered pass: pop in delivery order until a match.
        skipped: list[tuple[float, float, int, Message]] = []
        found: Message | None = None
        try:
            while heap:
                entry = heapq.heappop(heap)
                skipped.append(entry)  # restored even if ``match`` raises
                if match(entry[3]):
                    found = skipped.pop()[3]
                    break
        finally:
            if skipped:
                if heap:
                    for entry in skipped:
                        heapq.heappush(heap, entry)
                else:
                    # Drained completely: ``skipped`` is sorted ascending,
                    # hence already a valid heap.
                    heap[:] = skipped
        if found is not None and self._listener is not None:
            self._listener()
        return found

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def _ordered_entries(self) -> list[tuple[float, float, int, Message]]:
        """Heap entries in delivery order (shared by ``__iter__``/``clear``)."""
        return sorted(self._heap)

    def __iter__(self) -> Iterator[Message]:
        """Iterate messages in delivery order without removing them."""
        return (entry[3] for entry in self._ordered_entries())

    def snapshot(self) -> list[tuple[str, str]]:
        """``(kind, sender)`` of every queued message, delivery order.

        Non-destructive; used by the deadlock detector's hang reports to
        show messages that are queued but unmatched by the owner's
        selective receive (the classic lost-wakeup shape).
        """
        return [
            (entry[3].kind, entry[3].sender)
            for entry in self._ordered_entries()
        ]

    def clear(self) -> list[Message]:
        """Drop and return all queued messages (delivery order)."""
        drained = [entry[3] for entry in self._ordered_entries()]
        self._heap.clear()
        if drained and self._listener is not None:
            self._listener()
        return drained
