"""Per-thread message queues ordered by constraint urgency.

Messages carrying a more urgent constraint overtake less urgent ones, which
is how control events reach a component before queued data items (paper
section 2.2: control handlers "are executed with higher priority than
potentially long-running data processing").  Messages of equal urgency are
delivered in arrival order.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Iterator

from repro.mbt.message import Message


class Mailbox:
    """Priority queue of messages with selective receive."""

    def __init__(self):
        self._heap: list[tuple[float, float, int, Message]] = []
        self._seq = itertools.count()

    @staticmethod
    def _urgency(message: Message) -> tuple[float, float]:
        if message.constraint is None:
            return (0.0, math.inf)
        return message.constraint.sort_key()

    def put(self, message: Message) -> None:
        prio, deadline = self._urgency(message)
        heapq.heappush(self._heap, (prio, deadline, next(self._seq), message))

    def peek(self) -> Message | None:
        return self._heap[0][3] if self._heap else None

    def get(self, match: Callable[[Message], bool] | None = None) -> Message | None:
        """Remove and return the first message, or first matching message.

        Returns ``None`` when nothing (matching) is queued.
        """
        if not self._heap:
            return None
        if match is None:
            return heapq.heappop(self._heap)[3]
        for index, entry in enumerate(sorted(self._heap)):
            if match(entry[3]):
                self._heap.remove(entry)
                heapq.heapify(self._heap)
                return entry[3]
            # Only scan in priority order; ``sorted`` gives us that order.
            del index
        return None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Message]:
        """Iterate messages in delivery order without removing them."""
        return (entry[3] for entry in sorted(self._heap))

    def clear(self) -> list[Message]:
        """Drop and return all queued messages (delivery order)."""
        drained = [entry[3] for entry in sorted(self._heap)]
        self._heap.clear()
        return drained
