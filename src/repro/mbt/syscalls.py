"""Syscalls yielded by thread code functions.

A code function that needs to suspend — to wait for another message, to
sleep, or to model CPU consumption — is written as a generator and *yields*
one of the request objects below to the scheduler.  The scheduler performs
the request and resumes the generator with the result (``gen.send(result)``).
This is the Python rendering of the paper's suspendable code functions:
"code functions resemble event handlers, but may be suspended waiting for
other messages or may be preempted".

Code functions finish a message by returning :data:`CONTINUE` (thread stays
alive, awaiting its next message) or :data:`TERMINATE` (thread exits) —
mirroring "the thread is only terminated when indicated by the return code".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.mbt.constraints import Constraint
from repro.mbt.message import Message


class _ReturnCode:
    def __init__(self, name: str):
        self._name = name

    def __repr__(self) -> str:
        return self._name


#: Return code: keep the thread alive for further messages.
CONTINUE = _ReturnCode("CONTINUE")
#: Return code: terminate the thread.
TERMINATE = _ReturnCode("TERMINATE")

#: Sentinel resumed into a ``Receive`` whose timeout expired.
TIMED_OUT = _ReturnCode("TIMED_OUT")


class Syscall:
    """Base class for everything a code function may yield."""

    __slots__ = ()


@dataclass(slots=True)
class Send(Syscall):
    """Asynchronous send; the sender continues immediately."""

    message: Message


@dataclass(slots=True)
class Reply(Syscall):
    """Reply to a synchronous request message."""

    to: Message
    payload: Any = None


@dataclass(slots=True)
class Receive(Syscall):
    """Wait for the next message, optionally matching a predicate.

    Without a predicate, the most urgent queued message is delivered.  With
    one, the first queued message satisfying it is delivered; other messages
    stay queued.  ``timeout`` (in scheduler seconds) resumes the thread with
    :data:`TIMED_OUT` if nothing matched in time.
    """

    match: Callable[[Message], bool] | None = None
    timeout: float | None = None


@dataclass(slots=True)
class Call(Syscall):
    """Synchronous send: post a message and wait for its reply.

    While waiting, the caller's effective scheduling constraint is donated
    to the callee (priority inheritance), so a low-priority thread serving a
    high-priority caller cannot be starved by mid-priority threads.
    """

    target: str
    kind: str
    payload: Any = None
    constraint: Constraint | None = None
    timeout: float | None = None


@dataclass(slots=True)
class Sleep(Syscall):
    """Suspend for ``duration`` scheduler seconds."""

    duration: float


@dataclass(slots=True)
class WaitUntil(Syscall):
    """Suspend until the absolute scheduler time ``when``."""

    when: float


@dataclass(slots=True)
class Work(Syscall):
    """Consume ``duration`` seconds of CPU.

    Unlike :class:`Sleep`, working occupies the (single, simulated) CPU: no
    lower-priority thread runs meanwhile, and a higher-priority thread that
    becomes ready mid-work *preempts* the worker, which finishes the
    remainder later.  This models the paper's preemptible data-processing
    functions ("running data processing functions such as video decoders
    non-preemptively can introduce unacceptable delay in more time-critical
    components").
    """

    duration: float


@dataclass(slots=True)
class Yield(Syscall):
    """Voluntary preemption point; resumes once no more-urgent thread is ready."""


@dataclass(slots=True)
class Exit(Syscall):
    """Terminate the thread immediately."""

    code: Any = field(default_factory=lambda: TERMINATE)
