"""Trace inspection utilities.

Thread transparency hides threads from the *programmer*; when something
behaves unexpectedly, the middleware owes them visibility back.  With
``Engine(pipe, trace=True)`` the scheduler records every switch, dispatch,
block and preemption; the helpers here turn that record into something a
human can read.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.mbt.scheduler import Scheduler


def format_trace(
    scheduler: Scheduler,
    kinds: Iterable[str] | None = None,
    limit: int | None = None,
) -> str:
    """One line per trace event: ``time  kind  details``."""
    wanted = set(kinds) if kinds is not None else None
    lines = []
    for event in scheduler.trace:
        time_stamp, kind, *details = event
        if wanted is not None and kind not in wanted:
            continue
        rendered = " ".join(str(d) for d in details)
        lines.append(f"{time_stamp:10.6f}  {kind:<10} {rendered}")
        if limit is not None and len(lines) >= limit:
            lines.append("...")
            break
    return "\n".join(lines)


def switch_counts(scheduler: Scheduler) -> dict[str, int]:
    """How often each thread received the CPU."""
    counts: Counter[str] = Counter()
    for event in scheduler.trace:
        if event[1] == "switch":
            counts[event[3]] += 1
    return dict(counts)


def timeline(
    scheduler: Scheduler,
    width: int = 64,
    until: float | None = None,
) -> str:
    """A text Gantt chart: one row per thread, one column per time slot.

    ``#`` marks slots in which the thread held the CPU, ``.`` marks slots
    in which it existed but did not run.  Useful for eyeballing priority
    and preemption behaviour.
    """
    switches = [
        (event[0], event[3]) for event in scheduler.trace
        if event[1] == "switch"
    ]
    if not switches:
        return "(no activity recorded)"
    end = until if until is not None else max(
        scheduler.now(), switches[-1][0]
    )
    start = switches[0][0]
    span = max(end - start, 1e-9)
    slot = span / width

    threads = sorted({name for _, name in switches})
    rows = {name: ["."] * width for name in threads}

    # Attribute each column to the thread running at the column's start
    # instant, so every column carries exactly one '#' (a column is one
    # time slot; marking both ends of each interval used to double-book
    # the slot a switch fell into).
    switch_index = 0
    for column in range(width):
        slot_start = start + column * slot
        while (
            switch_index + 1 < len(switches)
            and switches[switch_index + 1][0] <= slot_start
        ):
            switch_index += 1
        rows[switches[switch_index][1]][column] = "#"

    label_width = max(len(name) for name in threads)
    header = (f"{'':{label_width}}  t={start:.3f}"
              f"{'':{max(0, width - 16)}}t={end:.3f}")
    body = "\n".join(
        f"{name:{label_width}}  {''.join(cells)}"
        for name, cells in rows.items()
    )
    return header + "\n" + body


def summarize(scheduler: Scheduler) -> str:
    """Compact run summary from the trace."""
    kinds = Counter(event[1] for event in scheduler.trace)
    parts = [f"{kind}={count}" for kind, count in sorted(kinds.items())]
    counts = switch_counts(scheduler)
    busiest = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
    lines = ["trace: " + " ".join(parts)]
    lines += [f"  {name}: scheduled {count}x" for name, count in busiest]
    return "\n".join(lines)
