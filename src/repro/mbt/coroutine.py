"""Suspendable control flows — the coroutines of section 3.3.

The glue layer runs "active" pipeline components (and wrapper loops for
passive components used against their natural mode) as coroutines: control
flows that suspend whenever they need data moved across a boundary.  The
paper's coroutines "merely provide a suspendable control flow, but are not a
unit of scheduling"; scheduling stays with the pump's thread.

Two interchangeable backends implement one small protocol
(:class:`Suspendable`):

* :class:`GeneratorSuspendable` (default) — the component's body is a Python
  generator; it suspends by ``yield``-ing a request object.  Deterministic,
  allocation-free switching, no OS threads.
* :class:`OSThreadSuspendable` — the component's body is a plain function
  making *blocking* calls, exactly like the paper's C++ components; it runs
  on a real OS thread with strict hand-off, so at most one control flow in a
  set is ever runnable ("All but one coroutines in a given set are blocked
  at any time").

The request objects transported between a coroutine and its driver are
opaque to this module; the Infopipe runtime defines them (pull, push, ...).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Generator

from repro.errors import RuntimeFault


class Done:
    """Marks completion of a suspendable; carries its return value."""

    __slots__ = ("result",)

    def __init__(self, result: Any = None):
        self.result = result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Done({self.result!r})"


class CoroutineKilled(BaseException):
    """Raised inside a coroutine body to unwind it during shutdown.

    Derives from ``BaseException`` so ordinary ``except Exception`` handlers
    in component code do not swallow it.
    """


class Suspendable:
    """A control flow that runs until it emits a request, then suspends."""

    def resume(self, value: Any = None) -> Any:
        """Continue execution, delivering ``value`` as the answer to the
        previous request.  Returns the next request, or :class:`Done`."""
        raise NotImplementedError

    def throw(self, exc: BaseException) -> Any:
        """Raise ``exc`` at the suspension point; returns like resume."""
        raise NotImplementedError

    def close(self) -> None:
        """Unwind the control flow (idempotent)."""
        raise NotImplementedError

    @property
    def finished(self) -> bool:
        raise NotImplementedError


class GeneratorSuspendable(Suspendable):
    """Backend running a generator; ``yield`` is the suspension point."""

    def __init__(self, gen: Generator):
        self._gen = gen
        self._started = False
        self._finished = False

    def resume(self, value: Any = None) -> Any:
        if self._finished:
            raise RuntimeFault("resume() after completion")
        try:
            if not self._started:
                self._started = True
                return next(self._gen)
            return self._gen.send(value)
        except StopIteration as stop:
            self._finished = True
            return Done(stop.value)

    def throw(self, exc: BaseException) -> Any:
        if self._finished:
            raise RuntimeFault("throw() after completion")
        if not self._started:
            self._started = True
            self._finished = True
            raise exc
        try:
            return self._gen.throw(exc)
        except StopIteration as stop:
            self._finished = True
            return Done(stop.value)

    def close(self) -> None:
        self._finished = True
        self._gen.close()

    @property
    def finished(self) -> bool:
        return self._finished


class SwitchChannel:
    """The blocking-call API handed to an :class:`OSThreadSuspendable` body.

    ``channel.call(request)`` publishes ``request`` to the driving thread
    and blocks until the driver resumes with an answer — a genuine blocking
    call, as in the paper's C++ components.
    """

    def __init__(self, owner: "OSThreadSuspendable"):
        self._owner = owner

    def call(self, request: Any) -> Any:
        return self._owner._thread_side_call(request)


_NOTHING = object()


class OSThreadSuspendable(Suspendable):
    """Backend running a plain blocking function on a real OS thread.

    Hand-off is strict: the controller and the body thread alternate, with
    exactly one of them runnable at any moment, synchronized through a
    single condition variable.
    """

    def __init__(self, func: Callable[[SwitchChannel], Any], name: str | None = None):
        self._func = func
        self._name = name or getattr(func, "__name__", "coroutine")
        self._cond = threading.Condition()
        self._to_body: Any = _NOTHING      # value or exception for the body
        self._to_body_exc: BaseException | None = None
        self._to_controller: Any = _NOTHING  # request, Done, or _Raise
        self._thread: threading.Thread | None = None
        self._finished = False

    class _Raise:
        __slots__ = ("exc",)

        def __init__(self, exc: BaseException):
            self.exc = exc

    # -- body side ----------------------------------------------------------

    def _bootstrap(self) -> None:
        channel = SwitchChannel(self)
        try:
            result = self._func(channel)
            outcome: Any = Done(result)
        except CoroutineKilled:
            outcome = Done(None)
        except BaseException as exc:  # delivered to the controller
            outcome = OSThreadSuspendable._Raise(exc)
        with self._cond:
            self._to_controller = outcome
            self._cond.notify_all()

    def _thread_side_call(self, request: Any) -> Any:
        with self._cond:
            self._to_controller = request
            self._cond.notify_all()
            while self._to_body is _NOTHING and self._to_body_exc is None:
                self._cond.wait()
            exc = self._to_body_exc
            value = self._to_body
            self._to_body = _NOTHING
            self._to_body_exc = None
        if exc is not None:
            raise exc
        return value

    # -- controller side ----------------------------------------------------

    def _exchange(self, value: Any, exc: BaseException | None) -> Any:
        with self._cond:
            if self._thread is None:
                if exc is not None:
                    self._finished = True
                    raise exc
                self._thread = threading.Thread(
                    target=self._bootstrap,
                    name=f"infopipe-{self._name}",
                    daemon=True,
                )
                self._thread.start()
            else:
                self._to_body = value if exc is None else _NOTHING
                self._to_body_exc = exc
                self._cond.notify_all()
            while self._to_controller is _NOTHING:
                self._cond.wait()
            outcome = self._to_controller
            self._to_controller = _NOTHING
        if isinstance(outcome, OSThreadSuspendable._Raise):
            self._finished = True
            raise outcome.exc
        if isinstance(outcome, Done):
            self._finished = True
        return outcome

    def resume(self, value: Any = None) -> Any:
        if self._finished:
            raise RuntimeFault("resume() after completion")
        return self._exchange(value, None)

    def throw(self, exc: BaseException) -> Any:
        if self._finished:
            raise RuntimeFault("throw() after completion")
        return self._exchange(None, exc)

    def close(self) -> None:
        if self._finished or self._thread is None:
            self._finished = True
            return
        try:
            self._exchange(None, CoroutineKilled())
        except CoroutineKilled:
            pass
        finally:
            self._finished = True
            if self._thread is not None:
                self._thread.join(timeout=2.0)

    @property
    def finished(self) -> bool:
        return self._finished


class CoroutineSet:
    """Bookkeeping for the coroutines sharing one pump's thread.

    Tracks membership and hand-off counts and checks the paper's invariant
    that at most one member is active at any time.
    """

    def __init__(self, name: str):
        self.name = name
        self._members: dict[str, Suspendable] = {}
        self._active: str | None = None
        #: Number of coroutine switches performed in this set.
        self.switches = 0

    def add(self, name: str, suspendable: Suspendable) -> None:
        if name in self._members:
            raise RuntimeFault(f"duplicate coroutine {name!r} in set {self.name!r}")
        self._members[name] = suspendable

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def members(self) -> list[str]:
        return list(self._members)

    @property
    def active(self) -> str | None:
        return self._active

    def switch_to(self, name: str, value: Any = None) -> Any:
        """Hand control to member ``name``; returns its next request."""
        if name not in self._members:
            raise RuntimeFault(f"unknown coroutine {name!r} in set {self.name!r}")
        if self._active == name:
            raise RuntimeFault(f"coroutine {name!r} is already active")
        self._active = name
        self.switches += 1
        try:
            return self._members[name].resume(value)
        finally:
            self._active = None

    def close(self) -> None:
        for suspendable in self._members.values():
            suspendable.close()
