"""Message-based user-level thread package (the paper's section 4 substrate).

The Infopipe platform of the paper is built on a message-based threading
package [refs 11, 12, 14 in the paper]: each user-level thread consists of a
*code function* and a queue of incoming messages.  The code function is not
called when the thread is created, but each time a message is received; after
processing a message it returns, and the thread terminates only when the
return code says so.  Threads therefore behave like extended finite state
machines.  Scheduling combines static thread priorities with per-message
*constraints* and priority inheritance.

This package reproduces that substrate in Python:

* :mod:`repro.mbt.message` / :mod:`repro.mbt.constraints` -- messages and
  scheduling constraints.
* :mod:`repro.mbt.thread` -- :class:`MThread`, the code-function-per-message
  thread model.  Code functions may be plain callables or generators that
  yield *syscalls* (:mod:`repro.mbt.syscalls`) to suspend.
* :mod:`repro.mbt.scheduler` -- a deterministic discrete-event scheduler with
  a virtual clock (a real-time clock is available for demos), priority
  scheduling, preemption at yield points, and priority inheritance.
* :mod:`repro.mbt.coroutine` -- suspendable control flows used by the glue
  layer to run "active" pipeline components; a generator backend (default)
  and an OS-thread backend (paper-faithful blocking calls) share one API.
"""

from repro.mbt.clock import Clock, RealClock, VirtualClock
from repro.mbt.constraints import Constraint
from repro.mbt.coroutine import (
    CoroutineSet,
    Done,
    GeneratorSuspendable,
    OSThreadSuspendable,
    Suspendable,
)
from repro.mbt.mailbox import Mailbox
from repro.mbt.message import Message
from repro.mbt.scheduler import Scheduler
from repro.mbt.syscalls import (
    CONTINUE,
    TERMINATE,
    Call,
    Exit,
    Receive,
    Reply,
    Send,
    Sleep,
    WaitUntil,
    Work,
    Yield,
)
from repro.mbt.thread import MThread
from repro.mbt.timers import PeriodicTimer, TimerService
from repro.mbt.tracing import format_trace, summarize, switch_counts, timeline

__all__ = [
    "CONTINUE",
    "Call",
    "Clock",
    "Constraint",
    "CoroutineSet",
    "Done",
    "Exit",
    "GeneratorSuspendable",
    "MThread",
    "Mailbox",
    "Message",
    "OSThreadSuspendable",
    "PeriodicTimer",
    "RealClock",
    "Receive",
    "Reply",
    "Scheduler",
    "Send",
    "Sleep",
    "Suspendable",
    "TERMINATE",
    "TimerService",
    "VirtualClock",
    "WaitUntil",
    "Work",
    "Yield",
    "format_trace",
    "summarize",
    "switch_counts",
    "timeline",
]
