"""User-level threads driven by messages.

Each :class:`MThread` "consists of a code function and a queue for incoming
messages.  Unlike conventional threads, the code function is not called at
thread creation time but each time a message is received" (paper, section 4).
The code function receives ``(thread, message)`` and either

* returns :data:`~repro.mbt.syscalls.CONTINUE` / ``TERMINATE`` directly, or
* is a generator function, yielding :mod:`~repro.mbt.syscalls` requests to
  suspend, and finally returning a return code.

Per-message state lives in ``thread.local`` (a plain dict), making threads
behave like the paper's extended finite state machines.

Scheduling key caching
----------------------
:meth:`MThread.effective_sort_key` is on the scheduler's hottest path (it
used to be recomputed, with fresh allocations, for *every* thread on
*every* dispatch and preemption check).  The key is now cached and
invalidated only by the events that can change it: a mailbox change
(delivery, receive, drain — wired through the mailbox's change listener),
a donation granted or revoked, the start or completion of message
processing, and a priority change.  Invalidation also notifies the owning
scheduler so its indexed ready queue stays current; see
:class:`repro.mbt.scheduler.Scheduler`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

from repro.mbt.constraints import Constraint
from repro.mbt.mailbox import Mailbox
from repro.mbt.message import Message

#: Sort key of the least urgent possible thread.
_IDLE_KEY = (math.inf, math.inf)

_INF = float("inf")

CodeFunction = Callable[["MThread", Message], Any]


@dataclass(slots=True)
class WaitState:
    """Why a thread is blocked.

    ``kind`` is ``"receive"`` (waiting for a matching message) or ``"time"``
    (sleeping).  ``timer`` holds a cancellable timer handle used for receive
    timeouts and sleep wake-ups.

    ``waiting_on`` and ``reason`` are diagnostic metadata for the
    deadlock detector (:mod:`repro.check.deadlock`): the name of the
    thread this wait depends on, when the blocker knows it (synchronous
    ``Call`` replies, match predicates carrying a ``waiting_on``
    attribute), and a human-readable cause.  They never influence
    scheduling.
    """

    kind: str
    match: Callable[[Message], bool] | None = None
    timer: Any = None
    waiting_on: str | None = None
    reason: str | None = None


class MThread:
    """A message-driven user-level thread.

    Parameters
    ----------
    name:
        Unique name; also the address used by :class:`~repro.mbt.message.Message`.
    code:
        The code function invoked once per received message.
    priority:
        Static priority (larger is more urgent), used whenever no message
        constraint applies.  Assigning to it invalidates the cached
        scheduling key.
    """

    __slots__ = (
        "name",
        "code",
        "_priority",
        "mailbox",
        "local",
        "terminated",
        "crashed",
        "_gen",
        "_current_message",
        "_resume_value",
        "_resume_exc",
        "_pending_work",
        "_wait",
        "_donations",
        "_last_ran",
        "_index",
        "_key_cache",
        "_scheduler",
        "_heap_entry",
        "_ready_since",
        "_obs_counters",
        "_tenant",
        "parked",
    )

    def __init__(
        self,
        name: str,
        code: CodeFunction,
        priority: int = 0,
        mailbox: Mailbox | None = None,
        local: dict | None = None,
    ):
        self.name = name
        self.code = code
        self._priority = priority
        self.mailbox = mailbox if mailbox is not None else Mailbox()
        #: Per-thread user state (the "extended" part of the FSM).
        self.local = local if local is not None else {}

        self.terminated = False
        self.crashed: BaseException | None = None

        # -- scheduler-private execution state -----------------------------
        self._gen: Any = None
        self._current_message: Message | None = None
        self._resume_value: Any = None
        self._resume_exc: BaseException | None = None
        self._pending_work: float = 0.0
        self._wait: WaitState | None = None
        #: Priority donations from synchronous callers, keyed by request
        #: msg id.
        self._donations: dict[int, Constraint] = {}
        #: Scheduler bookkeeping for fair tie-breaking.
        self._last_ran = 0
        self._index = 0
        #: Cached effective sort key; None means dirty.
        self._key_cache: tuple[float, float] | None = None
        #: Owning scheduler (set by Scheduler.add_thread); notified on
        #: key/readiness changes so the ready queue stays indexed.
        self._scheduler: Any = None
        #: The thread's live entry in the scheduler's ready heap, if any.
        self._heap_entry: list | None = None
        #: Virtual time this thread entered the ready queue; maintained
        #: only when a scheduler observability probe is installed.
        self._ready_since: float | None = None
        #: (probe, dispatch_counter, wall_counter) cached by the installed
        #: SchedulerProbe so the per-dispatch hooks skip the name lookups.
        self._obs_counters: tuple | None = None
        #: Fair-share tenant (repro.mbt.scheduler.Tenant) this thread is
        #: charged to; None (the default) keeps the classic sort order.
        self._tenant: Any = None
        #: Parked (quiesced-session) threads are never ready and hold no
        #: ready-heap entry; see Scheduler.park_thread.
        self.parked = False

        self.mailbox._listener = self._invalidate_key

    # ------------------------------------------------------------------ API

    @property
    def priority(self) -> int:
        return self._priority

    @priority.setter
    def priority(self, value: int) -> None:
        self._priority = value
        self._invalidate_key()

    def is_ready(self) -> bool:
        """True when the thread can use the CPU right now."""
        if self.terminated:
            return False
        if self.parked:
            return False
        if self._wait is not None:
            return False
        if self._pending_work > 0.0:
            return True
        if self._gen is not None:
            return True
        return bool(self.mailbox)

    def is_blocked(self) -> bool:
        return self._wait is not None and not self.terminated

    @property
    def processing(self) -> Message | None:
        """The message currently being processed, if any."""
        return self._current_message

    def effective_sort_key(self) -> tuple[float, float]:
        """Scheduling key; smaller sorts first (more urgent).

        Implements the paper's rule: the effective priority is derived from
        the constraint of the message currently being processed or, when the
        thread is merely waiting for the CPU, from the constraint of the
        first message in its incoming queue; absent any constraint the
        static thread priority applies.  Donations from synchronous callers
        (priority inheritance) are folded in.

        The result is cached; see the module docstring for the
        invalidation events.
        """
        key = self._key_cache
        if key is None:
            key = self._compute_sort_key()
            self._key_cache = key
        return key

    def _compute_sort_key(self) -> tuple[float, float]:
        best: Constraint | None = None
        message = self._current_message
        if message is not None:
            best = message.constraint
        elif self._gen is None:
            head = self.mailbox.peek()
            if head is not None:
                best = head.constraint
        donations = self._donations
        if donations:
            for constraint in donations.values():
                if constraint is not None and (
                    best is None or constraint.is_more_urgent_than(best)
                ):
                    best = constraint
        if best is None:
            return (-float(self._priority), math.inf)
        return best.sort_key()

    def effective_priority(self) -> float:
        """Convenience view of the priority component of the sort key."""
        return -self.effective_sort_key()[0]

    # ------------------------------------------------------ scheduler hooks

    def _invalidate_key(self) -> None:
        """Drop the cached sort key and reindex in the ready queue."""
        self._key_cache = None
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler._reindex(self)

    def _readiness_changed(self) -> None:
        """Reindex in the ready queue (key inputs unchanged)."""
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler._reindex(self)

    def donate(self, msg_id: int, constraint: Constraint) -> None:
        self._donations[msg_id] = constraint
        self._invalidate_key()

    def revoke_donation(self, msg_id: int) -> None:
        if self._donations.pop(msg_id, None) is not None:
            self._invalidate_key()

    def clear_execution_state(self) -> None:
        if self._gen is not None:
            try:
                self._gen.close()
            except Exception:  # pragma: no cover - defensive
                pass
        self._gen = None
        self._current_message = None
        self._resume_value = None
        self._resume_exc = None
        self._pending_work = 0.0
        self._wait = None
        self._donations.clear()
        self._invalidate_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "terminated"
            if self.terminated
            else "blocked"
            if self._wait is not None
            else "ready"
            if self.is_ready()
            else "idle"
        )
        return f"<MThread {self.name!r} prio={self.priority} {state}>"
