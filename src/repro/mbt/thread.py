"""User-level threads driven by messages.

Each :class:`MThread` "consists of a code function and a queue for incoming
messages.  Unlike conventional threads, the code function is not called at
thread creation time but each time a message is received" (paper, section 4).
The code function receives ``(thread, message)`` and either

* returns :data:`~repro.mbt.syscalls.CONTINUE` / ``TERMINATE`` directly, or
* is a generator function, yielding :mod:`~repro.mbt.syscalls` requests to
  suspend, and finally returning a return code.

Per-message state lives in ``thread.local`` (a plain dict), making threads
behave like the paper's extended finite state machines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.mbt.constraints import Constraint
from repro.mbt.mailbox import Mailbox
from repro.mbt.message import Message

#: Sort key of the least urgent possible thread.
_IDLE_KEY = (math.inf, math.inf)

CodeFunction = Callable[["MThread", Message], Any]


@dataclass(slots=True)
class WaitState:
    """Why a thread is blocked.

    ``kind`` is ``"receive"`` (waiting for a matching message) or ``"time"``
    (sleeping).  ``timer`` holds a cancellable timer handle used for receive
    timeouts and sleep wake-ups.
    """

    kind: str
    match: Callable[[Message], bool] | None = None
    timer: Any = None


@dataclass
class MThread:
    """A message-driven user-level thread.

    Parameters
    ----------
    name:
        Unique name; also the address used by :class:`~repro.mbt.message.Message`.
    code:
        The code function invoked once per received message.
    priority:
        Static priority (larger is more urgent), used whenever no message
        constraint applies.
    """

    name: str
    code: CodeFunction
    priority: int = 0

    mailbox: Mailbox = field(default_factory=Mailbox, repr=False)
    #: Per-thread user state (the "extended" part of the FSM).
    local: dict = field(default_factory=dict, repr=False)

    terminated: bool = False
    crashed: BaseException | None = None

    # -- scheduler-private execution state ---------------------------------
    _gen: Any = field(default=None, repr=False)
    _current_message: Message | None = field(default=None, repr=False)
    _resume_value: Any = field(default=None, repr=False)
    _resume_exc: BaseException | None = field(default=None, repr=False)
    _pending_work: float = field(default=0.0, repr=False)
    _wait: WaitState | None = field(default=None, repr=False)
    #: Priority donations from synchronous callers, keyed by request msg id.
    _donations: dict[int, Constraint] = field(default_factory=dict, repr=False)
    #: Scheduler bookkeeping for fair tie-breaking.
    _last_ran: int = field(default=0, repr=False)
    _index: int = field(default=0, repr=False)

    # ------------------------------------------------------------------ API

    def is_ready(self) -> bool:
        """True when the thread can use the CPU right now."""
        if self.terminated:
            return False
        if self._wait is not None:
            return False
        if self._pending_work > 0.0:
            return True
        if self._gen is not None:
            return True
        return bool(self.mailbox)

    def is_blocked(self) -> bool:
        return self._wait is not None and not self.terminated

    @property
    def processing(self) -> Message | None:
        """The message currently being processed, if any."""
        return self._current_message

    def effective_sort_key(self) -> tuple[float, float]:
        """Scheduling key; smaller sorts first (more urgent).

        Implements the paper's rule: the effective priority is derived from
        the constraint of the message currently being processed or, when the
        thread is merely waiting for the CPU, from the constraint of the
        first message in its incoming queue; absent any constraint the
        static thread priority applies.  Donations from synchronous callers
        (priority inheritance) are folded in.
        """
        candidates: list[Constraint] = []
        if self._current_message is not None:
            if self._current_message.constraint is not None:
                candidates.append(self._current_message.constraint)
        elif self._gen is None:
            head = self.mailbox.peek()
            if head is not None and head.constraint is not None:
                candidates.append(head.constraint)
        candidates.extend(self._donations.values())

        best = Constraint.most_urgent(*candidates)
        if best is None:
            return (-float(self.priority), math.inf)
        return best.sort_key()

    def effective_priority(self) -> float:
        """Convenience view of the priority component of the sort key."""
        return -self.effective_sort_key()[0]

    # ------------------------------------------------------ scheduler hooks

    def donate(self, msg_id: int, constraint: Constraint) -> None:
        self._donations[msg_id] = constraint

    def revoke_donation(self, msg_id: int) -> None:
        self._donations.pop(msg_id, None)

    def clear_execution_state(self) -> None:
        if self._gen is not None:
            try:
                self._gen.close()
            except Exception:  # pragma: no cover - defensive
                pass
        self._gen = None
        self._current_message = None
        self._resume_value = None
        self._resume_exc = None
        self._pending_work = 0.0
        self._wait = None
        self._donations.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "terminated"
            if self.terminated
            else "blocked"
            if self._wait is not None
            else "ready"
            if self.is_ready()
            else "idle"
        )
        return f"<MThread {self.name!r} prio={self.priority} {state}>"
