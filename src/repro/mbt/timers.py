"""Timer-to-message services.

The substrate maps timer expirations to ordinary messages, so threads handle
ticks through the same uniform message interface as everything else (paper
section 4: "network packets and signals from the operating system are mapped
to messages by the platform").
"""

from __future__ import annotations

from typing import Any

from repro.mbt.constraints import Constraint
from repro.mbt.message import Message
from repro.mbt.scheduler import Scheduler, TimerHandle


class TimerService:
    """Posts messages to threads at requested times."""

    __slots__ = ("_scheduler",)

    def __init__(self, scheduler: Scheduler):
        self._scheduler = scheduler

    def post_at(
        self,
        when: float,
        target: str,
        kind: str = "tick",
        payload: Any = None,
        constraint: Constraint | None = None,
    ) -> TimerHandle:
        message = Message(
            kind=kind,
            payload=payload,
            sender="timer",
            target=target,
            constraint=constraint,
        )
        return self._scheduler.at(when, lambda: self._scheduler.post(message))

    def post_after(
        self,
        delay: float,
        target: str,
        kind: str = "tick",
        payload: Any = None,
        constraint: Constraint | None = None,
    ) -> TimerHandle:
        return self.post_at(
            self._scheduler.now() + delay, target, kind, payload, constraint
        )


class PeriodicTimer:
    """Drift-free periodic tick source for clocked pumps.

    Each tick is scheduled at ``origin + n * period`` rather than "now +
    period", so long runs do not accumulate drift even when tick processing
    is delayed.
    """

    __slots__ = (
        "_scheduler",
        "_target",
        "_period",
        "_kind",
        "_payload",
        "_constraint",
        "_constraint_fn",
        "_start_at",
        "_next_time",
        "_handle",
        "_running",
        "ticks",
    )

    def __init__(
        self,
        scheduler: Scheduler,
        target: str,
        period: float,
        kind: str = "tick",
        payload: Any = None,
        constraint: Constraint | None = None,
        start_at: float | None = None,
        constraint_fn=None,
    ):
        """``constraint_fn(fire_time) -> Constraint`` computes a fresh
        constraint per tick (e.g. a deadline relative to the tick time);
        it takes precedence over the static ``constraint``."""
        if period <= 0:
            raise ValueError("period must be positive")
        self._scheduler = scheduler
        self._target = target
        self._period = float(period)
        self._kind = kind
        self._payload = payload
        self._constraint = constraint
        self._constraint_fn = constraint_fn
        self._start_at = start_at
        self._next_time: float | None = None
        self._handle: TimerHandle | None = None
        self._running = False
        #: Number of ticks posted so far.
        self.ticks = 0

    @property
    def period(self) -> float:
        return self._period

    @period.setter
    def period(self, value: float) -> None:
        """Adjust the rate on the fly (used by feedback-driven pumps)."""
        if value <= 0:
            raise ValueError("period must be positive")
        self._period = float(value)

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        first = (
            self._start_at
            if self._start_at is not None
            else self._scheduler.now()
        )
        self._next_time = max(first, self._scheduler.now())
        self._schedule()

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _schedule(self) -> None:
        assert self._next_time is not None
        self._handle = self._scheduler.at(self._next_time, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        constraint = self._constraint
        if self._constraint_fn is not None:
            constraint = self._constraint_fn(self._scheduler.now())
        self._scheduler.post(
            Message(
                kind=self._kind,
                payload=self._payload,
                sender="timer",
                target=self._target,
                constraint=constraint,
            )
        )
        assert self._next_time is not None
        self._next_time += self._period
        now = self._scheduler.now()
        if self._next_time <= now:
            # Processing overran one or more periods; skip to the future
            # rather than flooding the mailbox with stale ticks.
            periods_missed = int((now - self._next_time) / self._period) + 1
            self._next_time += periods_missed * self._period
        self._schedule()
