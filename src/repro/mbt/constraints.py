"""Scheduling constraints attached to messages.

The paper's thread package supports "scheduling control by attaching
priorities to threads as well as by attaching constraints to messages.  In
the latter case, the effective priority of a thread is derived by the
scheduler from the constraint of the message that the thread is currently
processing or, if the thread is waiting for the CPU, on the constraint of the
first message in its incoming queue."

A :class:`Constraint` carries a priority (larger is more urgent) and an
optional deadline in scheduler time.  Deadlines break priority ties: an
earlier deadline wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Constraint:
    """Urgency attached to a message.

    Parameters
    ----------
    priority:
        Larger values are more urgent.  The framework reserves nothing; the
        Infopipe layer conventionally uses 0 for data, 10 for control events.
    deadline:
        Optional absolute scheduler time by which the message should be
        processed.  Used only to order messages/threads of equal priority.
    """

    priority: int = 0
    deadline: float | None = None
    #: Cached sort key — computed once at construction; ``sort_key()`` runs
    #: on every mailbox put and effective-priority check, and constraints
    #: are immutable.
    _key: tuple[float, float] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        deadline = self.deadline if self.deadline is not None else math.inf
        object.__setattr__(self, "_key", (-self.priority, deadline))

    def sort_key(self) -> tuple[float, float]:
        """Key such that smaller sorts first for more-urgent constraints."""
        return self._key

    def is_more_urgent_than(self, other: "Constraint") -> bool:
        return self.sort_key() < other.sort_key()

    @staticmethod
    def most_urgent(*constraints: "Constraint | None") -> "Constraint | None":
        """Return the most urgent of the given constraints (``None`` skipped)."""
        best: Constraint | None = None
        for c in constraints:
            if c is None:
                continue
            if best is None or c.is_more_urgent_than(best):
                best = c
        return best

    def inherit(self, other: "Constraint | None") -> "Constraint":
        """Combine with an inherited constraint, keeping the more urgent one.

        This implements the package's priority-inheritance scheme: a thread
        processing a message on behalf of a more urgent caller temporarily
        acquires the caller's constraint.
        """
        if other is None or self.is_more_urgent_than(other):
            return self
        return other


#: Constraint used when none was specified.
DEFAULT_CONSTRAINT = Constraint(priority=0)
