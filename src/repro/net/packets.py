"""Network packets."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_packet_ids = itertools.count(1)

#: Bytes of header overhead accounted per packet on the wire.
HEADER_BYTES = 28  # IP (20) + UDP (8), close enough for a simulator


@dataclass(slots=True)
class Packet:
    """One packet on the simulated wire.

    Messages larger than the MTU are fragmented: ``msg_seq`` identifies the
    message, ``frag_idx``/``frag_count`` the fragment's position.
    """

    flow: str
    seq: int
    payload: bytes
    kind: str = "data"  # "data" | "ack" | "control"
    msg_seq: int = 0
    frag_idx: int = 0
    frag_count: int = 1
    sent_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def size(self) -> int:
        """Wire size in bytes (payload + header overhead)."""
        return len(self.payload) + HEADER_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet {self.kind} flow={self.flow} seq={self.seq} "
            f"{len(self.payload)}B>"
        )
