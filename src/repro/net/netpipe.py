"""Netpipes: the components that carry a plain byte flow between nodes.

A netpipe is realized as a component *pair* (Figure 3): the
:class:`NetpipeSender` terminates the producer-side pipeline (a passive
sink feeding the transport protocol), and the :class:`NetpipeReceiver`
heads the consumer-side pipeline (a passive boundary, like a buffer's
out-end, filled asynchronously by packet arrivals).

"These netpipes support plain data flows and may manage low-level
properties such as bandwidth and latency" — the receiver's Typespec stamps
the link's QoS properties and the new location onto the flow.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.components.buffers import EMPTY, OK, OnEmpty
from repro.core.component import Component, Role
from repro.core.events import EOS
from repro.core.items import NIL
from repro.core.polarity import Mode
from repro.core.styles import Style
from repro.core.typespec import Typespec, props
from repro.errors import MarshalError, RemoteError
from repro.net.marshal import (
    EncodedRun,
    append_frame_chunk,
    decode_batch_views,
    encode_batch,
)
from repro.net.network import Network
from repro.net.protocols import DatagramProtocol, Protocol, StreamProtocol


class NetpipeSender(Component):
    """Passive sink pushing each byte item into the transport protocol."""

    role = Role.SINK
    style = Style.CONSUMER
    is_activity_origin = False
    input_spec = Typespec({props.FORMAT: "bytes"})

    #: Marks this sink as a wire crossing for flow tracing: the traced
    #: sink walker stages item contexts here (``_flow_staged``) instead
    #: of finishing them, and the next send carries them as a
    #: trace-context side-chunk.  Both stay None when tracing is off.
    wire_sink = True
    _flow = None
    _flow_staged = None

    def __init__(self, protocol: Protocol, name: str | None = None):
        super().__init__(name)
        self.add_in_port(mode=Mode.PUSH)
        self.protocol = protocol
        self.location = protocol.src
        self.stats.update(frames_out=0, bytes_in=0)

    def push(self, item: Any) -> None:
        if not isinstance(item, (bytes, bytearray, memoryview)):
            raise MarshalError(
                f"{self.name!r} needs a byte flow; put a MarshalFilter "
                f"upstream (got {type(item).__name__})"
            )
        self.stats["bytes_in"] += len(item)
        staged = self._flow_staged
        if staged is not None:
            self._flow_staged = None
            side = self._flow.wire_chunk(staged, self.name)
            if side is not None:
                # Promote the single packet to a two-chunk frame so the
                # context travels with its item.
                self.stats["frames_out"] += 1
                self.protocol.send_frame(encode_batch([item, side]))
                return
        self.protocol.send(item)

    def push_many(self, items: list) -> None:
        """Batched entry used by the batched data plane: coalesce the run
        into ONE frame message (one encode_batch + one protocol send)
        instead of one message per item.  The receiving netpipe (or the
        protocol itself, for frame-unaware receivers) unfragments the
        frame back to individual items, so the item stream is unchanged.

        An :class:`EncodedRun` is the zero-copy fast path: its buffer is
        *already* in frame format (the marshal filter wrote headers and
        payloads into one preallocated bytearray), so the run goes to the
        protocol as-is — no per-item validation, no re-framing copy.
        """
        if isinstance(items, EncodedRun):
            self.stats["bytes_in"] += items.nbytes
            self.stats["frames_out"] += 1
            staged = self._flow_staged
            if staged is not None:
                self._flow_staged = None
                side = self._flow.wire_chunk(staged, self.name)
                if side is not None:
                    items.append_side_chunk(side)
            self.protocol.send_frame(items.frame_payload())
            return
        total = 0
        for item in items:
            if not isinstance(item, (bytes, bytearray, memoryview)):
                raise MarshalError(
                    f"{self.name!r} needs a byte flow; put a MarshalFilter "
                    f"upstream (got {type(item).__name__})"
                )
            total += len(item)
        self.stats["bytes_in"] += total
        self.stats["frames_out"] += 1
        payload = encode_batch(items)
        staged = self._flow_staged
        if staged is not None:
            self._flow_staged = None
            side = self._flow.wire_chunk(staged, self.name)
            if side is not None:
                payload = append_frame_chunk(payload, side)
        self.protocol.send_frame(payload)

    def on_eos(self) -> None:
        """Called by the runtime when EOS reaches this sink: forward the
        end of stream across the network."""
        self.protocol.send_eos()


class NetpipeReceiver(Component):
    """Passive boundary fed by packet arrivals.

    Downstream pumps pull from it exactly as from a buffer; an empty
    receiver blocks the puller (or yields NIL under the nil policy) until
    the network delivers.
    """

    role = Role.BUFFER  # boundary semantics: pulled through a gate

    def __init__(
        self,
        protocol: Protocol,
        name: str | None = None,
        on_empty: OnEmpty = OnEmpty.BLOCK,
        flow_spec: Typespec | None = None,
    ):
        super().__init__(name)
        self.add_out_port(mode=Mode.PULL)
        self.protocol = protocol
        self.location = protocol.dst
        self.on_empty = on_empty
        self.flow_spec = flow_spec or Typespec({props.FORMAT: "bytes"})
        #: Received wire chunks: bytes for per-item messages, zero-copy
        #: memoryview slices into the frame buffer for coalesced frames.
        self._queue: deque = deque()
        self._eos_pending = False
        self._gate = None
        self.stats.update(frames_in=0, bytes_in=0, bytes_out=0)
        #: Flow-control pacing: protocols with a ``note_drained`` method
        #: (a :class:`repro.net.mux.MuxStream` with credits) learn how
        #: many items the consumer actually pulled, so credit returns
        #: track real drain rate rather than arrival rate.
        self._drained_hook = getattr(protocol, "note_drained", None)
        protocol.on_deliver(
            self._deliver, self._deliver_eos, self._deliver_frame
        )

    # -- typespec -----------------------------------------------------------

    def transform_typespec(self, spec: Typespec) -> Typespec:
        return spec.intersect(
            self.flow_spec, context=f"flow received by {self.name!r}"
        )

    # -- wait telemetry (same positional scheme as Buffer) -------------------

    _obs_now = None
    _obs_wait = None
    _obs_ts: deque | None = None

    #: Flow tracer, when attached: arriving frames hand their chunks to
    #: :meth:`~repro.obs.flow.FlowTracer.wire_arrival` so trace-context
    #: side-chunks are stripped (and their traces reassembled) before the
    #: data chunks enter the receive queue.
    _flow = None

    def enable_wait_telemetry(self, now, histogram) -> None:
        """Record arrival-to-pull waits into ``histogram``; packets already
        queued are timed from this call."""
        self._obs_now = now
        self._obs_wait = histogram
        ts = deque()
        current = now()
        for _ in self._queue:
            ts.append(current)
        self._obs_ts = ts

    # -- runtime boundary interface (buffer-compatible) ----------------------

    @property
    def is_empty(self) -> bool:
        return not self._queue and not self._eos_pending

    @property
    def fill_level(self) -> int:
        return len(self._queue)

    def try_push(self, item: Any, port: str = "in") -> str:
        raise RemoteError(
            f"{self.name!r} is filled by the network, not by pushes"
        )

    def try_pull(self, port: str = "out") -> tuple[str, Any]:
        if self._queue:
            self.stats["items_out"] += 1
            if self._obs_now is not None and self._obs_ts:
                self._obs_wait.observe(self._obs_now() - self._obs_ts.popleft())
            chunk = self._queue.popleft()
            self.stats["bytes_out"] += len(chunk)
            if self._drained_hook is not None:
                self._drained_hook(1)
            return OK, chunk
        if self._eos_pending:
            self._eos_pending = False
            return OK, EOS
        if self.on_empty is OnEmpty.NIL:
            return OK, NIL
        return EMPTY, None

    def try_pull_many(self, n: int, port: str = "out") -> tuple[str, list]:
        """Batched pull with the Buffer run conventions (data first, EOS
        at most once and last, [] for nil-now)."""
        queued = len(self._queue)
        if queued:
            k = queued if queued < n else n
            queue = self._queue
            run = [queue.popleft() for _ in range(k)]
            self.stats["bytes_out"] += sum(len(chunk) for chunk in run)
            if self._obs_now is not None and self._obs_ts:
                now = self._obs_now()
                ts = self._obs_ts
                observe = self._obs_wait.observe
                for _ in range(min(k, len(ts))):
                    observe(now - ts.popleft())
            self.stats["items_out"] += k
            if self._drained_hook is not None:
                self._drained_hook(k)
            if k < n and self._eos_pending:
                self._eos_pending = False
                run.append(EOS)
            return OK, run
        if self._eos_pending:
            self._eos_pending = False
            return OK, [EOS]
        if self.on_empty is OnEmpty.NIL:
            return OK, []
        return EMPTY, []

    # -- network side ----------------------------------------------------------

    def on_attach(self, engine) -> None:
        self._gate = engine.gate_for(self)

    def _deliver(self, payload: bytes) -> None:
        self._queue.append(payload)
        if self._obs_now is not None:
            self._obs_ts.append(self._obs_now())
        if self._flow is not None:
            self._flow.wire_arrival_plain(self)
        self.stats["items_in"] += 1
        self.stats["bytes_in"] += len(payload)
        if self._gate is not None:
            self._gate.external_wake_pullers()

    def _deliver_frame(self, payload) -> None:
        """A coalesced frame arrived: unfragment back to items, one wake
        for the whole run.

        The chunks handed downstream are ``memoryview`` slices into the
        received frame buffer — zero payload copies on the receive path
        (the run-codec decoders keep aliasing that buffer all the way
        into component payload views).  A truncated or malformed frame
        raises a clear :class:`~repro.errors.MarshalError`.
        """
        chunks = decode_batch_views(payload)
        if self._flow is not None:
            chunks = self._flow.wire_arrival(self, chunks)
        self._queue.extend(chunks)
        self.stats["bytes_in"] += len(payload)
        if self._obs_now is not None:
            now = self._obs_now()
            ts = self._obs_ts
            for _ in chunks:
                ts.append(now)
        self.stats["items_in"] += len(chunks)
        self.stats["frames_in"] += 1
        if self._gate is not None:
            self._gate.external_wake_pullers()

    def _deliver_eos(self) -> None:
        self._eos_pending = True
        if self._gate is not None:
            self._gate.external_wake_pullers()


def make_netpipe_over(
    transport: Any,
    on_empty: OnEmpty = OnEmpty.BLOCK,
    flow_spec: Typespec | None = None,
    flow: str | None = None,
) -> tuple[NetpipeSender, NetpipeReceiver]:
    """Build a netpipe pair over a ready transport object.

    ``transport`` is anything speaking the protocol interface — a
    simulated :class:`~repro.net.protocols.Protocol`, a real-socket
    :class:`~repro.net.socketlink.SocketLink`, or an in-process
    :class:`~repro.net.socketlink.InProcessLink`.  The netpipe components
    themselves are transport-agnostic; this is the factory the sharded
    deployment layer (:mod:`repro.deploy`) uses to bridge cut edges.
    """
    flow = flow or getattr(transport, "flow", "flow")
    sender = NetpipeSender(transport, name=f"netpipe-send-{flow}")
    receiver = NetpipeReceiver(
        transport,
        name=f"netpipe-recv-{flow}",
        on_empty=on_empty,
        flow_spec=flow_spec,
    )
    return sender, receiver


def make_netpipe(
    network: Network | None,
    flow: str,
    src_node: str,
    dst_node: str,
    protocol: str = "datagram",
    on_empty: OnEmpty = OnEmpty.BLOCK,
    flow_spec: Typespec | None = None,
    transport: Any | None = None,
    **protocol_kwargs: Any,
) -> tuple[NetpipeSender, NetpipeReceiver]:
    """Build a netpipe pair over an existing link.

    ``protocol`` selects the simulated transport: ``"datagram"`` (best
    effort) or ``"stream"`` (reliable, in order).  Passing a ready
    ``transport`` object instead (e.g. a
    :class:`~repro.net.socketlink.SocketLink`) makes ``network`` and the
    ``protocol`` name irrelevant — the pair is built over it as-is.
    """
    if transport is None:
        if network is None:
            raise RemoteError(
                "make_netpipe needs a Network (or an explicit transport=)"
            )
        if protocol == "datagram":
            transport = DatagramProtocol(
                network, flow, src_node, dst_node, **protocol_kwargs
            )
        elif protocol == "stream":
            transport = StreamProtocol(
                network, flow, src_node, dst_node, **protocol_kwargs
            )
        else:
            raise RemoteError(f"unknown transport protocol {protocol!r}")
    return make_netpipe_over(
        transport, on_empty=on_empty, flow_spec=flow_spec, flow=flow
    )
