"""Transport protocols runnable inside netpipes.

"Any single protocol built into a middleware platform is inadequate";
netpipes therefore encapsulate pluggable transports.  Two are provided:

* :class:`DatagramProtocol` — best-effort: packets may be lost (link loss,
  queue overflow) and may arrive out of order (jitter).  This is the
  transport under the Figure-1 video pipeline, where loss is *managed* by
  a feedback-controlled dropping filter rather than masked.
* :class:`StreamProtocol` — reliable and in-order: selective repeat with
  per-packet retransmission timers and cumulative acks riding the reverse
  link.  Loss turns into latency, as a TCP-like transport would.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import RemoteError
from repro.net.network import Network
from repro.net.packets import Packet

DeliverFn = Callable[[bytes], None]
#: Payload marker for end-of-stream control packets.
EOS_KIND = "eos"
#: Payload marker for coalesced batch frames (see marshal.encode_batch):
#: one message carrying several encoded items, unfragmented back to items
#: on the receiving side.
FRAME_KIND = "frame"


#: Default maximum payload bytes per packet (Ethernet-ish).
DEFAULT_MTU = 1400


class Protocol:
    """Base: a one-directional byte transport between two nodes.

    Messages larger than the MTU are fragmented into multiple packets; the
    receiving side reassembles.  Under the datagram protocol the loss of
    any fragment loses the whole message — which is why arbitrary network
    dropping disproportionately kills large (I) frames, the effect the
    Figure-1 feedback loop avoids by dropping whole low-priority frames at
    the producer instead.
    """

    def __init__(self, network: Network, flow: str, src: str, dst: str,
                 mtu: int = DEFAULT_MTU):
        self.network = network
        self.flow = flow
        self.src = src
        self.dst = dst
        self.mtu = int(mtu)
        self._deliver: DeliverFn | None = None
        self._deliver_eos: Callable[[], None] | None = None
        self._deliver_frame: DeliverFn | None = None
        self.stats = {"sent": 0, "delivered": 0, "retransmits": 0}
        # Receiver-side loss estimation window (packet-sequence gaps).
        self._rx_highest = -1
        self._rx_window_expected = 0
        self._rx_window_received = 0
        self._next_msg_seq = 0
        network.register_receiver(flow, self._on_packet)

    def _fragments(self, payload: bytes, kind: str = "data"):
        """Split a message into MTU-sized fragment packets (unsequenced;
        the caller assigns packet seq numbers)."""
        msg_seq = self._next_msg_seq
        self._next_msg_seq += 1
        chunks = [payload[i : i + self.mtu]
                  for i in range(0, len(payload), self.mtu)] or [b""]
        return [
            Packet(
                flow=self.flow,
                seq=-1,
                payload=chunk,
                kind=kind,
                msg_seq=msg_seq,
                frag_idx=idx,
                frag_count=len(chunks),
            )
            for idx, chunk in enumerate(chunks)
        ]

    def _observe_rx(self, seq: int) -> None:
        if seq > self._rx_highest:
            self._rx_window_expected += seq - self._rx_highest
            self._rx_highest = seq
        self._rx_window_received += 1

    def receiver_loss_sample(self) -> float:
        """Packet loss fraction since the previous sample.

        This measures *network* loss (packet-sequence gaps at the
        receiver), which is what a consumer-side feedback sensor must use:
        frame-sequence gaps would also count the producer-side filter's own
        intentional drops and destabilize the loop.
        """
        expected = self._rx_window_expected
        received = self._rx_window_received
        self._rx_window_expected = 0
        self._rx_window_received = 0
        if expected <= 0:
            return 0.0
        return max(0.0, 1.0 - received / expected)

    def on_deliver(
        self,
        deliver: DeliverFn,
        deliver_eos: Callable[[], None],
        deliver_frame: DeliverFn | None = None,
    ) -> None:
        self._deliver = deliver
        self._deliver_eos = deliver_eos
        self._deliver_frame = deliver_frame

    # -- sender side -------------------------------------------------------

    def send(self, payload: bytes) -> None:
        raise NotImplementedError

    def send_frame(self, payload: bytes) -> None:
        """Send a coalesced batch frame (marshal.encode_batch payload)."""
        raise NotImplementedError

    def send_eos(self) -> None:
        raise NotImplementedError

    # -- receiver side ------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        raise NotImplementedError

    def _emit_message(self, message: bytes, kind: str) -> None:
        """Deliver a fully reassembled message to the bound receiver,
        unfragmenting batch frames when the receiver has no frame path."""
        self.stats["delivered"] += 1
        if kind == FRAME_KIND:
            if self._deliver_frame is not None:
                self._deliver_frame(message)
                return
            from repro.net.marshal import decode_batch

            for chunk in decode_batch(message):
                self._deliver(chunk)
            return
        self._deliver(message)

    def _hand_over(self, packet: Packet) -> None:
        if packet.kind == EOS_KIND:
            if self._deliver_eos is None:
                raise RemoteError(f"flow {self.flow!r} has no receiver bound")
            self._deliver_eos()
            return
        if self._deliver is None:
            raise RemoteError(f"flow {self.flow!r} has no receiver bound")
        self._emit_message(packet.payload, packet.kind)


class DatagramProtocol(Protocol):
    """Unreliable, unordered, no flow control — plain best effort."""

    def __init__(self, network: Network, flow: str, src: str, dst: str,
                 mtu: int = DEFAULT_MTU):
        super().__init__(network, flow, src, dst, mtu)
        self._next_seq = 0
        self._eos_pending = False
        # msg_seq -> {frag_idx: payload}; incomplete messages linger until
        # evicted by the horizon below.
        self._reassembly: dict[int, dict[int, bytes]] = {}
        self._frag_counts: dict[int, int] = {}
        self._delivered_msgs: set[int] = set()

    def send(self, payload: bytes, kind: str = "data") -> None:
        for packet in self._fragments(payload, kind):
            packet.seq = self._next_seq
            self._next_seq += 1
            self.stats["sent"] += 1
            self.network.transmit(self.src, self.dst, packet)

    def send_frame(self, payload: bytes) -> None:
        self.send(payload, FRAME_KIND)

    def send_eos(self) -> None:
        # Best-effort EOS: send a few copies so a lossy link still ends the
        # stream (a real system would use the session protocol).
        for _ in range(3):
            packet = Packet(
                flow=self.flow, seq=self._next_seq, payload=b"", kind=EOS_KIND
            )
            self._next_seq += 1
            self.network.transmit(self.src, self.dst, packet)

    def _on_packet(self, packet: Packet) -> None:
        if packet.kind == EOS_KIND:
            if self._eos_pending:
                return  # duplicate EOS copy
            self._eos_pending = True
            self._hand_over(packet)
            return
        self._observe_rx(packet.seq)
        message = self._reassemble(packet)
        if message is not None:
            self._emit_message(message, packet.kind)

    def _reassemble(self, packet: Packet) -> bytes | None:
        msg = packet.msg_seq
        if msg in self._delivered_msgs:
            return None
        if packet.frag_count == 1:
            self._delivered_msgs.add(msg)
            self._evict_stale(msg)
            return packet.payload
        frags = self._reassembly.setdefault(msg, {})
        frags[packet.frag_idx] = packet.payload
        self._frag_counts[msg] = packet.frag_count
        if len(frags) < packet.frag_count:
            return None
        del self._reassembly[msg]
        del self._frag_counts[msg]
        self._delivered_msgs.add(msg)
        self._evict_stale(msg)
        return b"".join(frags[i] for i in range(packet.frag_count))

    def _evict_stale(self, completed_msg: int, horizon: int = 64) -> None:
        stale = [m for m in self._reassembly if m < completed_msg - horizon]
        for msg in stale:
            del self._reassembly[msg]
            self._frag_counts.pop(msg, None)
        self._delivered_msgs = {
            m for m in self._delivered_msgs if m >= completed_msg - horizon
        }


class StreamProtocol(Protocol):
    """Reliable in-order transport: selective repeat + cumulative acks."""

    def __init__(
        self,
        network: Network,
        flow: str,
        src: str,
        dst: str,
        retransmit_timeout: float = 0.1,
        max_retries: int = 20,
        mtu: int = DEFAULT_MTU,
    ):
        super().__init__(network, flow, src, dst, mtu)
        self.retransmit_timeout = retransmit_timeout
        self.max_retries = max_retries
        self._ack_flow = flow + "/ack"
        network.register_receiver(self._ack_flow, self._on_ack)
        # Sender state.
        self._next_seq = 0
        self._unacked: dict[int, tuple[Packet, int]] = {}
        # Receiver state.
        self._expected = 0
        self._reorder: dict[int, Packet] = {}
        self._partial: list[bytes] = []
        self._partial_msg: int | None = None

    # -- sender -------------------------------------------------------------

    def send(self, payload: bytes, kind: str = "data") -> None:
        for packet in self._fragments(payload, kind):
            packet.seq = self._next_seq
            self._next_seq += 1
            self._transmit_tracked(packet, retries=0)

    def send_frame(self, payload: bytes) -> None:
        self.send(payload, FRAME_KIND)

    def send_eos(self) -> None:
        packet = Packet(
            flow=self.flow, seq=self._next_seq, payload=b"", kind=EOS_KIND
        )
        self._next_seq += 1
        self._transmit_tracked(packet, retries=0)

    def _transmit_tracked(self, packet: Packet, retries: int) -> None:
        self.stats["sent"] += 1
        if retries:
            self.stats["retransmits"] += 1
        self._unacked[packet.seq] = (packet, retries)
        self.network.transmit(self.src, self.dst, packet)
        timeout = self.retransmit_timeout * (1 + retries)
        self.network.scheduler.after(
            timeout, lambda: self._check_retransmit(packet.seq)
        )

    def _check_retransmit(self, seq: int) -> None:
        entry = self._unacked.get(seq)
        if entry is None:
            return  # acked in the meantime
        packet, retries = entry
        if retries >= self.max_retries:
            raise RemoteError(
                f"flow {self.flow!r}: packet {seq} lost after "
                f"{retries} retries"
            )
        self._transmit_tracked(packet, retries + 1)

    def _on_ack(self, ack: Packet) -> None:
        # Cumulative: everything below ack.seq is delivered.
        for seq in [s for s in self._unacked if s < ack.seq]:
            del self._unacked[seq]

    # -- receiver -------------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        if packet.kind != EOS_KIND:
            self._observe_rx(packet.seq)
        if packet.seq >= self._expected and packet.seq not in self._reorder:
            self._reorder[packet.seq] = packet
        while self._expected in self._reorder:
            ready = self._reorder.pop(self._expected)
            self._expected += 1
            self._deliver_in_order(ready)
        self._send_ack()

    def _deliver_in_order(self, packet: Packet) -> None:
        if packet.kind == EOS_KIND:
            self._hand_over(packet)
            return
        if packet.frag_count == 1:
            self._emit_message(packet.payload, packet.kind)
            return
        # Fragments of one message arrive consecutively (in-order stream).
        if self._partial_msg != packet.msg_seq:
            self._partial = []
            self._partial_msg = packet.msg_seq
        self._partial.append(packet.payload)
        if len(self._partial) == packet.frag_count:
            message = b"".join(self._partial)
            self._partial = []
            self._partial_msg = None
            self._emit_message(message, packet.kind)

    def _send_ack(self) -> None:
        ack = Packet(
            flow=self._ack_flow, seq=self._expected, payload=b"", kind="ack"
        )
        self.network.transmit(self.dst, self.src, ack)
