"""Distribution substrate (paper section 2.4).

"Any single protocol built into a middleware platform is inadequate for
remote transmission of information flows with a variety of QoS
requirements.  However, different transport protocols can be easily
integrated into the Infopipe framework as netpipes."

Since no real network is available (or desirable) in a deterministic
reproduction, :mod:`repro.net.network` implements a discrete-event network
simulator — links with bandwidth, propagation delay, jitter, loss, and
drop-tail queues — on the same virtual clock as the pipelines.  On top of
it:

* :mod:`repro.net.protocols` — an unreliable datagram protocol and a
  reliable, in-order stream protocol (ack + retransmit);
* :mod:`repro.net.netpipe` — the netpipe component pair carrying a plain
  byte flow between nodes;
* :mod:`repro.net.marshal` — marshalling filters translating item flows to
  byte flows and back, with a compact binary codec;
* :mod:`repro.net.node` / :mod:`repro.net.remote` — nodes, remote component
  factories, remote Typespec queries and the binding helper that splices a
  marshal→netpipe→unmarshal segment into a pipeline.
"""

from repro.net.links import Link
from repro.net.marshal import (
    Codec,
    MarshalFilter,
    UnmarshalFilter,
    decode_item,
    encode_item,
    register_codec,
)
from repro.net.netpipe import (
    NetpipeReceiver,
    NetpipeSender,
    make_netpipe,
    make_netpipe_over,
)
from repro.net.network import Network
from repro.net.node import Node
from repro.net.packets import Packet
from repro.net.protocols import DatagramProtocol, StreamProtocol
from repro.net.qosmap import bandwidth_demand, netpipe_flow_props
from repro.net.remote import RemoteBinder, RemoteFactory
from repro.net.socketlink import InProcessLink, SocketLink

__all__ = [
    "Codec",
    "DatagramProtocol",
    "InProcessLink",
    "Link",
    "MarshalFilter",
    "NetpipeReceiver",
    "NetpipeSender",
    "Network",
    "Node",
    "Packet",
    "RemoteBinder",
    "RemoteFactory",
    "SocketLink",
    "StreamProtocol",
    "UnmarshalFilter",
    "bandwidth_demand",
    "decode_item",
    "encode_item",
    "make_netpipe",
    "make_netpipe_over",
    "netpipe_flow_props",
    "register_codec",
]
