"""Marshalling: items <-> bytes (paper sections 2.4 and Figure 3).

"Marshalling filters on either side translate the raw data flow to and from
a higher-level information flow."

The wire format is a compact tag-length-value binary encoding built with
``struct`` — no pickling, so the format is explicit, versionable, and safe
to decode.  Applications register codecs for their own item classes with
:func:`register_codec` (the media substrate registers its frame types).
"""

from __future__ import annotations

import struct
from typing import Any, Callable

from repro.core.styles import FunctionComponent
from repro.core.typespec import Typespec, props
from repro.errors import MarshalError

# -- primitive TLV codec -------------------------------------------------------

_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_BYTES = 6
_T_TUPLE = 7
_T_LIST = 8
_T_DICT = 9
_T_CUSTOM = 10

_custom_encoders: dict[type, tuple[str, Callable[[Any], dict]]] = {}
_custom_decoders: dict[str, Callable[[dict], Any]] = {}


def register_codec(
    cls: type,
    tag: str,
    to_fields: Callable[[Any], dict],
    from_fields: Callable[[dict], Any],
) -> None:
    """Register a codec for a custom item class.

    ``to_fields`` maps an instance to a dict of primitive values;
    ``from_fields`` rebuilds the instance.
    """
    _custom_encoders[cls] = (tag, to_fields)
    _custom_decoders[tag] = from_fields


def encode_item(item: Any) -> bytes:
    """Encode an item to wire bytes."""
    out = bytearray()
    _encode(item, out)
    return bytes(out)


def decode_item(data: bytes) -> Any:
    """Decode wire bytes back to an item."""
    item, offset = _decode(data, 0)
    if offset != len(data):
        raise MarshalError(
            f"trailing garbage: consumed {offset} of {len(data)} bytes"
        )
    return item


def _encode(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        out += struct.pack("!q", value)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += struct.pack("!d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += struct.pack("!I", len(raw))
        out += raw
    elif isinstance(value, bytes):
        out.append(_T_BYTES)
        out += struct.pack("!I", len(value))
        out += value
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        out += struct.pack("!I", len(value))
        for element in value:
            _encode(element, out)
    elif isinstance(value, list):
        out.append(_T_LIST)
        out += struct.pack("!I", len(value))
        for element in value:
            _encode(element, out)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out += struct.pack("!I", len(value))
        for key, element in value.items():
            _encode(key, out)
            _encode(element, out)
    elif type(value) in _custom_encoders:
        tag, to_fields = _custom_encoders[type(value)]
        out.append(_T_CUSTOM)
        raw_tag = tag.encode("ascii")
        out += struct.pack("!H", len(raw_tag))
        out += raw_tag
        _encode(to_fields(value), out)
    else:
        raise MarshalError(
            f"cannot marshal {type(value).__name__}; register_codec() it"
        )


def _decode(data: bytes, offset: int) -> tuple[Any, int]:
    try:
        tag = data[offset]
    except IndexError:
        raise MarshalError("truncated data") from None
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        (value,) = struct.unpack_from("!q", data, offset)
        return value, offset + 8
    if tag == _T_FLOAT:
        (value,) = struct.unpack_from("!d", data, offset)
        return value, offset + 8
    if tag == _T_STR:
        (length,) = struct.unpack_from("!I", data, offset)
        offset += 4
        return data[offset : offset + length].decode("utf-8"), offset + length
    if tag == _T_BYTES:
        (length,) = struct.unpack_from("!I", data, offset)
        offset += 4
        return bytes(data[offset : offset + length]), offset + length
    if tag in (_T_TUPLE, _T_LIST):
        (length,) = struct.unpack_from("!I", data, offset)
        offset += 4
        elements = []
        for _ in range(length):
            element, offset = _decode(data, offset)
            elements.append(element)
        return (tuple(elements) if tag == _T_TUPLE else elements), offset
    if tag == _T_DICT:
        (length,) = struct.unpack_from("!I", data, offset)
        offset += 4
        result = {}
        for _ in range(length):
            key, offset = _decode(data, offset)
            value, offset = _decode(data, offset)
            result[key] = value
        return result, offset
    if tag == _T_CUSTOM:
        (tag_len,) = struct.unpack_from("!H", data, offset)
        offset += 2
        type_tag = data[offset : offset + tag_len].decode("ascii")
        offset += tag_len
        fields, offset = _decode(data, offset)
        decoder = _custom_decoders.get(type_tag)
        if decoder is None:
            raise MarshalError(f"no codec registered for tag {type_tag!r}")
        return decoder(fields), offset
    raise MarshalError(f"unknown wire tag {tag}")


def encode_batch(chunks: list[bytes]) -> bytes:
    """Coalesce already-encoded items into one frame payload.

    Frame format: ``!I`` chunk count, then per chunk a ``!I`` length
    prefix followed by the chunk bytes.  Used by the batched data plane's
    netpipe coalescing (one frame per sender flush instead of one message
    per item); :func:`decode_batch` unfragments exactly.
    """
    out = bytearray(struct.pack("!I", len(chunks)))
    for chunk in chunks:
        out += struct.pack("!I", len(chunk))
        out += chunk
    return bytes(out)


def decode_batch(data: bytes) -> list[bytes]:
    """Split a frame payload back into its encoded items."""
    if len(data) < 4:
        raise MarshalError("truncated frame header")
    (count,) = struct.unpack_from("!I", data, 0)
    offset = 4
    chunks: list[bytes] = []
    for _ in range(count):
        if offset + 4 > len(data):
            raise MarshalError("truncated frame chunk header")
        (length,) = struct.unpack_from("!I", data, offset)
        offset += 4
        end = offset + length
        if end > len(data):
            raise MarshalError("truncated frame chunk")
        chunks.append(bytes(data[offset:end]))
        offset = end
    if offset != len(data):
        raise MarshalError(
            f"trailing garbage: consumed {offset} of {len(data)} bytes"
        )
    return chunks


class Codec:
    """Object-style facade over the module-level codec functions."""

    encode = staticmethod(encode_item)
    decode = staticmethod(decode_item)


# -- marshalling filters -------------------------------------------------------


class MarshalFilter(FunctionComponent):
    """Item flow -> byte flow, for the sending side of a netpipe."""

    output_props = {props.FORMAT: "bytes"}

    def __init__(self, name: str | None = None, cost_per_kb: float = 0.0):
        super().__init__(name)
        self._cost_per_kb = cost_per_kb

    def convert(self, item: Any) -> bytes:
        data = encode_item(item)
        if self._cost_per_kb:
            self.charge(self._cost_per_kb * len(data) / 1024.0)
        return data

    def convert_many(self, items: list) -> list:
        out = [encode_item(item) for item in items]
        if self._cost_per_kb:
            total = sum(len(data) for data in out)
            self.charge(self._cost_per_kb * total / 1024.0)
        return out

    def transform_typespec(self, spec: Typespec) -> Typespec:
        # Remember the item-level properties so the peer unmarshaller can
        # restore them; the wire flow itself is plain bytes.
        return Typespec({props.FORMAT: "bytes", "carried": spec})


class UnmarshalFilter(FunctionComponent):
    """Byte flow -> item flow, for the receiving side of a netpipe."""

    input_spec = Typespec({props.FORMAT: "bytes"})

    def __init__(self, name: str | None = None, cost_per_kb: float = 0.0):
        super().__init__(name)
        self._cost_per_kb = cost_per_kb

    def convert(self, data: bytes) -> Any:
        if self._cost_per_kb:
            self.charge(self._cost_per_kb * len(data) / 1024.0)
        return decode_item(data)

    def convert_many(self, chunks: list) -> list:
        if self._cost_per_kb:
            total = sum(len(data) for data in chunks)
            self.charge(self._cost_per_kb * total / 1024.0)
        return [decode_item(data) for data in chunks]

    def transform_typespec(self, spec: Typespec) -> Typespec:
        carried = spec["carried"]
        if not isinstance(carried, Typespec):
            return spec.without("carried").with_props(format="item")
        # Restore the item-level flow, keeping the QoS properties the
        # netpipe stamped onto the byte-level flow (including the location,
        # which only netpipes may change).
        restored = carried
        for key in (
            props.LATENCY,
            props.JITTER,
            props.LOSS_RATE,
            props.BANDWIDTH,
            props.LOCATION,
        ):
            if key in spec:
                restored = restored.with_props(**{key: spec[key]})
        return restored
