"""Marshalling: items <-> bytes (paper sections 2.4 and Figure 3).

"Marshalling filters on either side translate the raw data flow to and from
a higher-level information flow."

The wire format is a compact tag-length-value binary encoding built with
``struct`` — no pickling, so the format is explicit, versionable, and safe
to decode.  Applications register codecs for their own item classes with
:func:`register_codec` (the media substrate registers its frame types).

Two encoding tiers coexist:

* **per-item TLV** — :func:`encode_item` / :func:`decode_item`, the
  original format, unchanged byte-for-byte (golden traces pin it);
* **columnar runs** — a :class:`~repro.core.runs.ColumnarRun` whose type
  was registered with :func:`register_run_codec` encodes straight into ONE
  preallocated ``bytearray`` already laid out in the coalesced frame
  format (:class:`EncodedRun`), and decodes back from ``memoryview``
  slices into the received frame without copying payload bytes
  (:func:`decode_batch_views`).  Chunk first-bytes ``0x20..0x7F`` are
  reserved for these raw codecs, disjoint from the TLV tags below.
"""

from __future__ import annotations

import struct
from typing import Any, Callable

from repro.core.runs import ColumnarRun, is_columnar
from repro.core.styles import FunctionComponent
from repro.core.typespec import Typespec, props
from repro.errors import MarshalError

# -- primitive TLV codec -------------------------------------------------------

_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_BYTES = 6
_T_TUPLE = 7
_T_LIST = 8
_T_DICT = 9
_T_CUSTOM = 10

_custom_encoders: dict[type, tuple[str, Callable[[Any], dict]]] = {}
_custom_decoders: dict[str, Callable[[dict], Any]] = {}

#: First byte of a raw columnar chunk; values below this are TLV tags.
RUN_WIRE_BASE = 0x20

#: First byte of a trace-context side-chunk (repro.obs.flow).  Reserved
#: out of the run-codec id space: a coalesced frame may carry one such
#: chunk after its data chunks, holding the TLV-encoded flow contexts of
#: the sampled items in the frame (the per-run context column for the
#: 0x20/0x21 run codecs).  Flow-aware receivers strip it before the data
#: chunks reach the unmarshaller.
FLOW_CHUNK_MAGIC = 0x7F

#: First byte of a stream-ID header chunk (repro.net.mux).  Reserved out
#: of the run-codec id space like the flow chunk: on a multiplexed link
#: every wire message is a coalesced frame whose FIRST chunk starts with
#: this byte and names the logical stream (tenant) the rest of the frame
#: belongs to.  The mux strips it before payloads reach the per-stream
#: receivers.
STREAM_CHUNK_MAGIC = 0x7E

_run_encoders: dict[type, Callable[[Any], "EncodedRun"]] = {}
_run_decoders: dict[int, tuple[Callable[[list], Any], Callable[[Any], Any]]] = {}


def register_codec(
    cls: type,
    tag: str,
    to_fields: Callable[[Any], dict],
    from_fields: Callable[[dict], Any],
) -> None:
    """Register a codec for a custom item class.

    ``to_fields`` maps an instance to a dict of primitive values;
    ``from_fields`` rebuilds the instance.
    """
    _custom_encoders[cls] = (tag, to_fields)
    _custom_decoders[tag] = from_fields


def register_run_codec(
    run_cls: type,
    wire_id: int,
    encode_run: Callable[[Any], "EncodedRun"],
    decode_many: Callable[[list], Any],
    decode_one: Callable[[Any], Any],
) -> None:
    """Register a columnar run codec.

    ``encode_run`` maps a ColumnarRun instance to an :class:`EncodedRun`;
    ``decode_many`` rebuilds a ColumnarRun from a homogeneous list of
    chunk views (each starting with ``wire_id``); ``decode_one`` rebuilds
    a single item from one chunk (the per-item fallback when a raw chunk
    meets an unbatched receiver).
    """
    if not (RUN_WIRE_BASE <= wire_id < STREAM_CHUNK_MAGIC):
        raise MarshalError(
            f"run wire id must be in [{RUN_WIRE_BASE:#x}, "
            f"{STREAM_CHUNK_MAGIC - 1:#x}], got {wire_id:#x}"
        )
    _run_encoders[run_cls] = encode_run
    _run_decoders[wire_id] = (decode_many, decode_one)


def encode_item(item: Any) -> bytes:
    """Encode an item to wire bytes."""
    out = bytearray()
    _encode(item, out)
    return bytes(out)


def decode_item(data) -> Any:
    """Decode wire bytes (or a memoryview of them) back to an item."""
    if len(data) and data[0] >= RUN_WIRE_BASE:
        if data[0] == FLOW_CHUNK_MAGIC:
            raise MarshalError(
                "trace-context side-chunk reached the unmarshaller; "
                "flow chunks must be stripped by the netpipe receiver"
            )
        if data[0] == STREAM_CHUNK_MAGIC:
            raise MarshalError(
                "stream-ID header chunk reached the unmarshaller; "
                "multiplexed frames must pass through a StreamMux"
            )
        codec = _run_decoders.get(data[0])
        if codec is None:
            raise MarshalError(f"unknown wire tag {data[0]}")
        return codec[1](data)
    try:
        item, offset = _decode(data, 0)
    except struct.error as exc:
        raise MarshalError(f"truncated data: {exc}") from None
    if offset != len(data):
        raise MarshalError(
            f"trailing garbage: consumed {offset} of {len(data)} bytes"
        )
    return item


def _encode(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        out += struct.pack("!q", value)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += struct.pack("!d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += struct.pack("!I", len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        out.append(_T_BYTES)
        out += struct.pack("!I", len(value))
        out += value
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        out += struct.pack("!I", len(value))
        for element in value:
            _encode(element, out)
    elif isinstance(value, list):
        out.append(_T_LIST)
        out += struct.pack("!I", len(value))
        for element in value:
            _encode(element, out)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out += struct.pack("!I", len(value))
        for key, element in value.items():
            _encode(key, out)
            _encode(element, out)
    elif type(value) in _custom_encoders:
        tag, to_fields = _custom_encoders[type(value)]
        out.append(_T_CUSTOM)
        raw_tag = tag.encode("ascii")
        out += struct.pack("!H", len(raw_tag))
        out += raw_tag
        _encode(to_fields(value), out)
    else:
        raise MarshalError(
            f"cannot marshal {type(value).__name__}; register_codec() it"
        )


def _decode(data, offset: int) -> tuple[Any, int]:
    try:
        tag = data[offset]
    except IndexError:
        raise MarshalError("truncated data") from None
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        (value,) = struct.unpack_from("!q", data, offset)
        return value, offset + 8
    if tag == _T_FLOAT:
        (value,) = struct.unpack_from("!d", data, offset)
        return value, offset + 8
    if tag == _T_STR:
        (length,) = struct.unpack_from("!I", data, offset)
        offset += 4
        if offset + length > len(data):
            raise MarshalError(
                f"truncated string: need {length} bytes, "
                f"have {len(data) - offset}"
            )
        return str(data[offset : offset + length], "utf-8"), offset + length
    if tag == _T_BYTES:
        (length,) = struct.unpack_from("!I", data, offset)
        offset += 4
        if offset + length > len(data):
            raise MarshalError(
                f"truncated bytes: need {length} bytes, "
                f"have {len(data) - offset}"
            )
        return bytes(data[offset : offset + length]), offset + length
    if tag in (_T_TUPLE, _T_LIST):
        (length,) = struct.unpack_from("!I", data, offset)
        offset += 4
        elements = []
        for _ in range(length):
            element, offset = _decode(data, offset)
            elements.append(element)
        return (tuple(elements) if tag == _T_TUPLE else elements), offset
    if tag == _T_DICT:
        (length,) = struct.unpack_from("!I", data, offset)
        offset += 4
        result = {}
        for _ in range(length):
            key, offset = _decode(data, offset)
            value, offset = _decode(data, offset)
            result[key] = value
        return result, offset
    if tag == _T_CUSTOM:
        (tag_len,) = struct.unpack_from("!H", data, offset)
        offset += 2
        if offset + tag_len > len(data):
            raise MarshalError("truncated codec tag")
        type_tag = str(data[offset : offset + tag_len], "ascii")
        offset += tag_len
        fields, offset = _decode(data, offset)
        decoder = _custom_decoders.get(type_tag)
        if decoder is None:
            raise MarshalError(f"no codec registered for tag {type_tag!r}")
        return decoder(fields), offset
    raise MarshalError(f"unknown wire tag {tag}")


# -- coalesced frames ----------------------------------------------------------


def encode_batch(chunks: list) -> bytes:
    """Coalesce already-encoded items into one frame payload.

    Frame format: ``!I`` chunk count, then per chunk a ``!I`` length
    prefix followed by the chunk bytes.  Used by the batched data plane's
    netpipe coalescing (one frame per sender flush instead of one message
    per item); :func:`decode_batch` unfragments exactly.  Chunks may be
    ``bytes``, ``bytearray`` or ``memoryview``.
    """
    out = bytearray(struct.pack("!I", len(chunks)))
    for chunk in chunks:
        out += struct.pack("!I", len(chunk))
        out += chunk
    return bytes(out)


def alloc_run_buffer(lengths: list[int]) -> tuple[bytearray, list[int]]:
    """Preallocate ONE frame-format buffer for chunks of the given lengths.

    Returns ``(buffer, offsets)``: the chunk-count header and every
    per-chunk length prefix are already written; ``offsets[i]`` is where
    chunk ``i``'s body starts.  Run codecs fill the bodies in place via
    ``memoryview`` slices (zero intermediate allocations), then wrap the
    buffer in an :class:`EncodedRun`.
    """
    n = len(lengths)
    buffer = bytearray(4 + 4 * n + sum(lengths))
    struct.pack_into("!I", buffer, 0, n)
    offsets = []
    offset = 4
    for length in lengths:
        struct.pack_into("!I", buffer, offset, length)
        offset += 4
        offsets.append(offset)
        offset += length
    return buffer, offsets


class EncodedRun(ColumnarRun):
    """A columnar run of already-encoded wire chunks sharing ONE buffer.

    The buffer is *already in the coalesced frame format* — the sender
    hands it to ``protocol.send_frame`` as-is, with no per-item encode and
    no reassembly copy.  Indexing and iteration yield ``memoryview``
    chunk slices, so the run still behaves as N byte items for gates,
    stats and any per-item fallback path.
    """

    __slots__ = ("buffer", "offsets", "lengths", "_mv")

    def __init__(self, buffer: bytearray, offsets: list[int],
                 lengths: list[int]):
        self.buffer = buffer
        self.offsets = offsets
        self.lengths = lengths
        self._mv = memoryview(buffer)

    def __len__(self) -> int:
        return len(self.offsets)

    def chunk(self, i: int) -> memoryview:
        offset = self.offsets[i]
        return self._mv[offset : offset + self.lengths[i]]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self.chunk(i) for i in range(len(self))[index]]
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        return self.chunk(index)

    @property
    def nbytes(self) -> int:
        return sum(self.lengths)

    def frame_payload(self) -> memoryview:
        """The whole buffer, ready for ``protocol.send_frame``."""
        return self._mv

    def append_side_chunk(self, side: bytes) -> None:
        """Append one extra chunk to the already-framed buffer in place.

        Used by flow tracing to attach the trace-context side-chunk to a
        zero-copy run without re-encoding it: the chunk count at offset 0
        is patched and the length-prefixed side bytes are appended.  The
        exported ``memoryview`` must be released around the resize; if
        some other view still pins the buffer, fall back to a copy.
        """
        self._mv.release()
        buffer = self.buffer
        try:
            buffer += struct.pack("!I", len(side))
        except BufferError:
            buffer = bytearray(buffer)
            buffer += struct.pack("!I", len(side))
            self.buffer = buffer
        self.offsets.append(len(buffer))
        self.lengths.append(len(side))
        buffer += side
        struct.pack_into("!I", buffer, 0, len(self.offsets))
        self._mv = memoryview(buffer)


def encode_run(run: Any) -> EncodedRun | None:
    """Encode a ColumnarRun via its registered run codec, or None when no
    codec covers its type (callers fall back to per-item TLV)."""
    encoder = _run_encoders.get(type(run))
    return None if encoder is None else encoder(run)


def decode_batch(data) -> list[bytes]:
    """Split a frame payload back into its encoded items (copying)."""
    return [bytes(chunk) for chunk in decode_batch_views(data)]


def decode_batch_views(data) -> list[memoryview]:
    """Split a frame payload into ``memoryview`` chunk slices — zero copy.

    Every chunk aliases the received frame buffer; raising a clear
    :class:`MarshalError` on truncated or malformed frames (count or
    length prefixes pointing past the end, trailing garbage) instead of
    misparsing.
    """
    view = data if isinstance(data, memoryview) else memoryview(data)
    total = view.nbytes
    if total < 4:
        raise MarshalError(
            f"truncated frame header: {total} of 4 bytes"
        )
    (count,) = struct.unpack_from("!I", view, 0)
    offset = 4
    chunks: list[memoryview] = []
    for index in range(count):
        if offset + 4 > total:
            raise MarshalError(
                f"truncated frame: chunk {index} of {count} has no "
                f"length prefix"
            )
        (length,) = struct.unpack_from("!I", view, offset)
        offset += 4
        end = offset + length
        if end > total:
            raise MarshalError(
                f"truncated frame chunk {index}: need {length} bytes, "
                f"have {total - offset}"
            )
        chunks.append(view[offset:end])
        offset = end
    if offset != total:
        raise MarshalError(
            f"trailing garbage: consumed {offset} of {total} bytes"
        )
    return chunks


# -- trace-context side-chunks (repro.obs.flow) --------------------------------


def encode_flow_chunk(entries: list) -> bytes:
    """Encode flow-trace entries into a side-chunk.

    ``entries`` is a list of ``(run_index, wire_fields)`` tuples — the
    positional index of the sampled item within the frame plus its
    :meth:`~repro.obs.flow.TraceContext.to_wire` dict.  The body after
    the :data:`FLOW_CHUNK_MAGIC` byte is ordinary TLV.
    """
    return bytes([FLOW_CHUNK_MAGIC]) + encode_item(
        [tuple(entry) for entry in entries]
    )


def split_flow_chunk(chunks: list) -> tuple[list, list | None]:
    """Split a decoded frame's chunks into (data chunks, flow entries).

    The trace-context side-chunk, when present, is always the last chunk
    of a frame.  Returns the entries decoded by :func:`encode_flow_chunk`
    or ``None`` when the frame carries no flow chunk.
    """
    if not chunks:
        return chunks, None
    last = chunks[-1]
    if (
        not isinstance(last, (bytes, bytearray, memoryview))
        or not len(last)
        or last[0] != FLOW_CHUNK_MAGIC
    ):
        return chunks, None
    return chunks[:-1], decode_item(last[1:])


def append_frame_chunk(payload: bytes, side: bytes) -> bytes:
    """Return ``payload`` (an :func:`encode_batch` frame) with one extra
    length-prefixed chunk appended and the chunk count patched."""
    (count,) = struct.unpack_from("!I", payload, 0)
    out = bytearray(payload)
    struct.pack_into("!I", out, 0, count + 1)
    out += struct.pack("!I", len(side))
    out += side
    return bytes(out)


class Codec:
    """Object-style facade over the module-level codec functions."""

    encode = staticmethod(encode_item)
    decode = staticmethod(decode_item)


# -- marshalling filters -------------------------------------------------------


class MarshalFilter(FunctionComponent):
    """Item flow -> byte flow, for the sending side of a netpipe."""

    output_props = {props.FORMAT: "bytes"}

    def __init__(self, name: str | None = None, cost_per_kb: float = 0.0):
        super().__init__(name)
        self._cost_per_kb = cost_per_kb
        self.stats.update(bytes_out=0)

    def convert(self, item: Any) -> bytes:
        data = encode_item(item)
        self.stats["bytes_out"] += len(data)
        if self._cost_per_kb:
            self.charge(self._cost_per_kb * len(data) / 1024.0)
        return data

    def convert_many(self, items: list) -> Any:
        if is_columnar(items):
            run = encode_run(items)
            if run is not None:
                total = run.nbytes
                self.stats["bytes_out"] += total
                if self._cost_per_kb:
                    self.charge(self._cost_per_kb * total / 1024.0)
                return run
            items = list(items)
        out = [encode_item(item) for item in items]
        total = sum(len(data) for data in out)
        self.stats["bytes_out"] += total
        if self._cost_per_kb:
            self.charge(self._cost_per_kb * total / 1024.0)
        return out

    def transform_typespec(self, spec: Typespec) -> Typespec:
        # Remember the item-level properties so the peer unmarshaller can
        # restore them; the wire flow itself is plain bytes.
        return Typespec({props.FORMAT: "bytes", "carried": spec})


class UnmarshalFilter(FunctionComponent):
    """Byte flow -> item flow, for the receiving side of a netpipe."""

    input_spec = Typespec({props.FORMAT: "bytes"})

    def __init__(self, name: str | None = None, cost_per_kb: float = 0.0):
        super().__init__(name)
        self._cost_per_kb = cost_per_kb
        self.stats.update(bytes_in=0)

    def convert(self, data) -> Any:
        self.stats["bytes_in"] += len(data)
        if self._cost_per_kb:
            self.charge(self._cost_per_kb * len(data) / 1024.0)
        return decode_item(data)

    def convert_many(self, chunks: list) -> Any:
        total = sum(len(data) for data in chunks)
        self.stats["bytes_in"] += total
        if self._cost_per_kb:
            self.charge(self._cost_per_kb * total / 1024.0)
        run = self._decode_run(chunks)
        if run is not None:
            return run
        return [decode_item(data) for data in chunks]

    @staticmethod
    def _decode_run(chunks: list) -> Any:
        """Rebuild a ColumnarRun when every chunk carries the same
        registered raw wire id — the received payload views flow straight
        into the batch's payload columns, zero copies."""
        if not chunks:
            return None
        first = chunks[0]
        if not isinstance(first, (bytes, bytearray, memoryview)):
            return None
        if not len(first) or first[0] < RUN_WIRE_BASE:
            return None
        wire_id = first[0]
        codec = _run_decoders.get(wire_id)
        if codec is None:
            return None
        for chunk in chunks:
            if (
                not isinstance(chunk, (bytes, bytearray, memoryview))
                or not len(chunk)
                or chunk[0] != wire_id
            ):
                return None
        return codec[0](chunks)

    def transform_typespec(self, spec: Typespec) -> Typespec:
        carried = spec["carried"]
        if not isinstance(carried, Typespec):
            return spec.without("carried").with_props(format="item")
        # Restore the item-level flow, keeping the QoS properties the
        # netpipe stamped onto the byte-level flow (including the location,
        # which only netpipes may change).
        restored = carried
        for key in (
            props.LATENCY,
            props.JITTER,
            props.LOSS_RATE,
            props.BANDWIDTH,
            props.LOCATION,
        ):
            if key in spec:
                restored = restored.with_props(**{key: spec[key]})
        return restored
