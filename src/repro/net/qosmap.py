"""QoS mapping between information-flow and netpipe properties.

"These components also encapsulate the QoS mapping of netpipe properties
and information flow properties" (section 2.1): a video flow's rate and
frame size translate into a bandwidth demand on the transport, and the
transport's latency/jitter/loss translate back into flow-level properties
downstream components (and feedback controllers) can read.
"""

from __future__ import annotations

from repro.core.typespec import ANY, Interval, Typespec, props
from repro.net.links import Link
from repro.net.packets import HEADER_BYTES


def bandwidth_demand(
    spec: Typespec,
    avg_item_bytes: float | None = None,
    item_rate: float | None = None,
) -> float | None:
    """Estimate the bandwidth (bits/s) a flow needs, or None if unknown.

    Uses the flow's frame rate (upper bound of a range) and either an
    explicit average item size or the flow's frame dimensions (assuming a
    compressed size of ~0.1 bit per pixel, a rough MPEG-like figure).

    When the typespec carries no usable frame rate but the caller knows
    the average item size, the estimate falls back to ``avg_item_bytes``
    at ``item_rate`` items/s (default 1.0 — a conservative floor) rather
    than returning None, so admission control over non-media flows (the
    multi-tenant fabric's common case) still gets a number to budget
    with.  Only a flow with neither a rate nor an item size is unknown.
    """
    rate = _upper(spec[props.FRAME_RATE])
    if rate is None:
        if avg_item_bytes is None:
            return None
        rate = item_rate if item_rate is not None else 1.0
    if avg_item_bytes is None:
        width = _upper(spec[props.FRAME_WIDTH])
        height = _upper(spec[props.FRAME_HEIGHT])
        if width is None or height is None:
            return None
        avg_item_bytes = width * height * 0.1 / 8.0
    per_item = (avg_item_bytes + HEADER_BYTES) * 8.0
    return rate * per_item


def link_admits(link: Link, spec: Typespec, avg_item_bytes: float | None = None) -> bool:
    """Can the link carry the flow at full rate?"""
    demand = bandwidth_demand(spec, avg_item_bytes)
    if demand is None:
        return True  # unknown demand: admit, feedback will adapt
    return demand <= link.bandwidth_bps


def netpipe_flow_props(link: Link) -> dict:
    """Flow-level properties a netpipe over ``link`` stamps on its output."""
    return {
        props.BANDWIDTH: link.bandwidth_bps,
        props.LATENCY: Interval(link.delay, link.delay + link.jitter),
        props.JITTER: link.jitter,
        props.LOSS_RATE: link.loss_rate,
    }


def _upper(value) -> float | None:
    if value is ANY:
        return None
    if isinstance(value, Interval):
        return value.hi
    if isinstance(value, (int, float)):
        return float(value)
    return None
