"""Remote factories and distributed pipeline binding (section 2.4).

"In addition to netpipes, the Infopipe platform provides protocols and
factories for the creation of remote Infopipe components.  Remote Typespec
queries also require a middleware protocol as well as a mechanism for
property marshalling."

The :class:`RemoteBinder` splices a ``marshal >> netpipe-send || netpipe-
recv >> unmarshal`` segment between a producer-side pipeline on one node
and a consumer-side pipeline on another, performing the remote Typespec
query (with property marshalling over the simulated network's control
channel) and the location update that only netpipes may make.
"""

from __future__ import annotations

from typing import Any, Type, TypeVar

from repro.components.buffers import OnEmpty
from repro.core.component import Component
from repro.core.composition import Pipeline, connect, derive_typespecs
from repro.core.typespec import Choices, Interval, Typespec, props
from repro.errors import RemoteError, TypespecMismatch
from repro.net.marshal import (
    MarshalFilter,
    UnmarshalFilter,
    decode_item,
    encode_item,
)
from repro.net.netpipe import make_netpipe
from repro.net.network import Network
from repro.net.node import Node
from repro.net.qosmap import netpipe_flow_props

C = TypeVar("C", bound=Component)


def marshal_typespec(spec: Typespec) -> bytes:
    """Property marshalling for remote Typespec queries."""
    fields: dict = {}
    for key in spec:
        value = spec[key]
        if isinstance(value, Interval):
            fields[key] = ("interval", value.lo, value.hi)
        elif isinstance(value, Choices):
            fields[key] = ("choices", tuple(sorted(map(repr, value.options))),
                           tuple(value.options))
        elif isinstance(value, Typespec):
            fields[key] = ("nested", marshal_typespec(value))
        else:
            fields[key] = ("atom", value)
    return encode_item(fields)


def unmarshal_typespec(data: bytes) -> Typespec:
    fields = decode_item(data)
    props_out: dict = {}
    for key, packed in fields.items():
        kind = packed[0]
        if kind == "interval":
            props_out[key] = Interval(packed[1], packed[2])
        elif kind == "choices":
            props_out[key] = Choices(packed[2])
        elif kind == "nested":
            props_out[key] = unmarshal_typespec(packed[1])
        else:
            props_out[key] = packed[1]
    return Typespec(props_out)


class RemoteFactory:
    """Creates components on a remote node through the middleware.

    The factory protocol costs one control round trip per operation, which
    is accounted in :attr:`setup_cost` (setup happens before the pipeline
    starts, so the virtual clock is not advanced).
    """

    def __init__(self, network: Network):
        self.network = network
        self._nodes: dict[str, Node] = {}
        self._registry: dict[str, Type[Component]] = {}
        #: Accumulated control-plane time spent on factory/bind operations.
        self.setup_cost = 0.0

    def add_node(self, node: Node) -> Node:
        self._nodes[node.name] = node
        return node

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise RemoteError(f"unknown node {name!r}") from None

    def register(self, type_name: str, component_cls: Type[Component]) -> None:
        """Make a component type instantiable remotely by name."""
        self._registry[type_name] = component_cls

    def create_remote(
        self, node_name: str, type_name: str, *args: Any, **kwargs: Any
    ) -> Component:
        """Create a registered component type on a (possibly remote) node."""
        component_cls = self._registry.get(type_name)
        if component_cls is None:
            raise RemoteError(f"component type {type_name!r} not registered")
        self.setup_cost += self.network.rtt(_any_other(self._nodes, node_name),
                                            node_name)
        return self.node(node_name).create(component_cls, *args, **kwargs)

    def query_typespec(self, querying_node: str, component: Component) -> Typespec:
        """Remote Typespec query with property marshalling: the spec crosses
        the control channel in wire format both ways."""
        remote_node = getattr(component, "location", "")
        self.setup_cost += self.network.rtt(querying_node, remote_node)
        wire = marshal_typespec(component.accepts())
        return unmarshal_typespec(wire)


def _any_other(nodes: dict, name: str) -> str:
    for candidate in nodes:
        if candidate != name:
            return candidate
    return name


class RemoteBinder:
    """Splices netpipes into pipelines that span nodes."""

    def __init__(self, network: Network, factory: RemoteFactory | None = None):
        self.network = network
        self.factory = factory or RemoteFactory(network)

    def bind(
        self,
        producer_side: Pipeline | Component,
        consumer_side: Pipeline | Component,
        src_node: str,
        dst_node: str,
        flow: str,
        protocol: str = "datagram",
        on_empty: OnEmpty = OnEmpty.BLOCK,
        marshal_cost_per_kb: float = 0.0,
        **protocol_kwargs: Any,
    ) -> Pipeline:
        """Connect a producer-side pipeline on ``src_node`` to a consumer-
        side pipeline on ``dst_node`` across the network.

        Performs the binding protocol: remote Typespec query, compatibility
        check (with the location update a netpipe makes), and assembly of
        the marshal/netpipe/unmarshal segment.  Returns one Pipeline
        containing both sides; run it with a single Engine (one scheduler
        simulates the whole distributed system) after
        ``engine.attach_network(network)``.
        """
        producer = _as_pipeline(producer_side)
        consumer = _as_pipeline(consumer_side)
        link = self.network.link(src_node, dst_node)

        # -- binding protocol: remote typespec query --------------------------
        consumer_head = consumer.free_in_port().component
        remote_accepts = self.factory.query_typespec(src_node, consumer_head)

        carried = derive_typespecs(producer.components).get(
            producer.free_out_port().qualified_name(), Typespec.any()
        )
        # The netpipe is the only component allowed to change the location.
        moved = carried.with_props(**{props.LOCATION: dst_node})
        try:
            moved.intersect(
                remote_accepts,
                context=f"binding flow {flow!r} {src_node}->{dst_node}",
            )
        except TypespecMismatch:
            raise

        # -- assemble the segment ---------------------------------------------
        sender, receiver = make_netpipe(
            self.network,
            flow,
            src_node,
            dst_node,
            protocol=protocol,
            on_empty=on_empty,
            flow_spec=Typespec(
                {
                    props.FORMAT: "bytes",
                    "carried": moved,
                    props.LOCATION: dst_node,
                    **netpipe_flow_props(link),
                }
            ),
            **protocol_kwargs,
        )
        marshal = MarshalFilter(
            name=f"marshal-{flow}", cost_per_kb=marshal_cost_per_kb
        )
        marshal.location = src_node
        unmarshal = UnmarshalFilter(
            name=f"unmarshal-{flow}", cost_per_kb=marshal_cost_per_kb
        )
        unmarshal.location = dst_node

        left = producer >> marshal >> sender
        right = Pipeline([receiver, unmarshal])
        connect(receiver.out_port, unmarshal.in_port, check_typespecs=False)
        merged = Pipeline(left.components + right.components + consumer.components)
        connect(unmarshal.out_port, consumer.free_in_port(), check_typespecs=False)
        merged.derive_typespecs()
        return merged


def _as_pipeline(side: Pipeline | Component) -> Pipeline:
    return side if isinstance(side, Pipeline) else Pipeline([side])
