"""Point-to-point links with bandwidth, delay, jitter, loss and queueing.

A link models a serializing transmitter feeding a propagation delay:

* packets are serialized one at a time at ``bandwidth_bps``;
* while the transmitter is busy, packets wait in a bounded drop-tail queue
  (``queue_packets``), so sustained overload produces both queueing delay
  and loss — the congestion the Figure-1 feedback loop reacts to;
* after serialization a packet propagates for ``delay`` seconds plus
  uniform random jitter in ``[0, jitter]``;
* independently of congestion, each packet is lost with ``loss_rate``
  probability (random loss on a best-effort path).

All randomness comes from a seeded RNG owned by the network, so runs are
reproducible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.net.packets import Packet


@dataclass
class LinkStats:
    sent: int = 0
    delivered: int = 0
    dropped_queue: int = 0
    dropped_random: int = 0
    bytes_delivered: int = 0
    max_queue: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_queue + self.dropped_random


@dataclass
class Link:
    """Directed link between two nodes."""

    src: str
    dst: str
    bandwidth_bps: float = 10_000_000.0  # bits per second (10 Mbit/s)
    delay: float = 0.010
    jitter: float = 0.0
    loss_rate: float = 0.0
    queue_packets: int = 64

    stats: LinkStats = field(default_factory=LinkStats)
    #: Time at which the transmitter becomes free.
    _busy_until: float = 0.0
    #: Serialization-finish times of packets still queued or being sent.
    _departures: deque = field(default_factory=deque)

    def serialization_time(self, packet: Packet) -> float:
        return packet.size * 8.0 / self.bandwidth_bps

    def queue_occupancy(self, now: float) -> int:
        """Packets queued or in serialization at ``now``."""
        while self._departures and self._departures[0] <= now + 1e-12:
            self._departures.popleft()
        return len(self._departures)

    def admit(self, now: float, packet: Packet, rng) -> float | None:
        """Accept a packet for transmission at ``now``.

        Returns the arrival time at ``dst``, or ``None`` if the packet was
        dropped (queue overflow or random loss).
        """
        self.stats.sent += 1
        if rng.random() < self.loss_rate:
            self.stats.dropped_random += 1
            return None
        occupancy = self.queue_occupancy(now)
        if occupancy >= self.queue_packets:
            self.stats.dropped_queue += 1
            return None
        self.stats.max_queue = max(self.stats.max_queue, occupancy + 1)
        start = max(now, self._busy_until)
        self._busy_until = start + self.serialization_time(packet)
        self._departures.append(self._busy_until)
        arrival = self._busy_until + self.delay
        if self.jitter > 0.0:
            arrival += rng.random() * self.jitter
        self.stats.delivered += 1
        self.stats.bytes_delivered += packet.size
        return arrival

    @property
    def key(self) -> tuple[str, str]:
        return (self.src, self.dst)
