"""Stream multiplexing: thousands of logical netpipes over ONE link.

A multi-tenant fabric (:mod:`repro.fabric`) cannot afford one socket per
session.  :class:`StreamMux` multiplexes any transport speaking the
protocol interface (:class:`~repro.net.socketlink.SocketLink`,
:class:`~repro.net.socketlink.InProcessLink`, a simulated protocol) into
per-tenant :class:`MuxStream` endpoints that *themselves* speak the
protocol interface — so ``make_netpipe_over(mux.open_stream(sid))`` just
works and the whole marshalling / coalesced-frame / zero-copy substrate
transfers unchanged.

Wire format — the stream-ID TLV chunk
-------------------------------------
Every message on a multiplexed link is a coalesced frame
(:func:`~repro.net.marshal.encode_batch`) whose FIRST chunk is a
stream-ID header, extending the side-chunk pattern that flow tracing
introduced (trace-context chunks ride *last*; stream headers ride
*first* so routing needs no scan)::

    chunk 0: STREAM_CHUNK_MAGIC (0x7E) | kind u8 | stream_id u32 | arg i32
    chunk 1: the original payload (absent for EOS / CREDIT frames)

``kind`` is DATA (a single ``protocol.send`` payload), FRAME (a
coalesced frame payload, delivered to the stream's ``deliver_frame``
for per-stream reassembly), EOS (per-stream end of stream; the shared
link stays open for the other tenants), or CREDIT (flow control,
``arg`` = items granted).

Per-stream flow control
-----------------------
With ``credits=N`` a stream starts with a window of N items.  Sends are
charged per item (a coalesced frame costs its chunk count); when the
window is exhausted, further sends queue *locally* in the stream —
``pending`` — instead of entering the shared link, so one slow tenant
backpressures only itself.  The receiving end returns credits as its
consumer actually drains (``note_drained``, wired automatically by
:class:`~repro.net.netpipe.NetpipeReceiver`), batched to half the window
to amortize the reverse-direction frames.  A stream with ``credits=None``
(the default) is uncontrolled.

Link-level EOS (the peer closed the whole transport) fans out as EOS to
every open stream.  Frames for unknown stream ids — a tenant crashed and
its session was closed while frames were in flight — are counted and
dropped, never poisoning the remaining tenants.
"""

from __future__ import annotations

import struct
from typing import Any, Callable

from repro.errors import MarshalError, RemoteError
from repro.net.marshal import (
    STREAM_CHUNK_MAGIC,
    decode_batch,
    decode_batch_views,
    encode_batch,
)

#: Stream-frame kinds (second byte of the header chunk).
MUX_DATA = 0
MUX_FRAME = 1
MUX_EOS = 2
MUX_CREDIT = 3

_HEADER = struct.Struct("!BBIi")


def encode_stream_header(kind: int, stream_id: int, arg: int = 0) -> bytes:
    """The stream-ID TLV chunk: magic, kind, stream id, argument."""
    return _HEADER.pack(STREAM_CHUNK_MAGIC, kind, stream_id, arg)


def decode_stream_header(chunk) -> tuple[int, int, int]:
    """Parse a header chunk back to ``(kind, stream_id, arg)``."""
    if len(chunk) != _HEADER.size or chunk[0] != STREAM_CHUNK_MAGIC:
        raise MarshalError(
            f"not a stream-ID header chunk ({len(chunk)} bytes, "
            f"first byte {chunk[0] if len(chunk) else None!r})"
        )
    _, kind, stream_id, arg = _HEADER.unpack_from(chunk)
    return kind, stream_id, arg


def _frame_cost(payload) -> int:
    """Items in a coalesced frame = its chunk count (header word)."""
    if len(payload) < 4:
        return 1
    (count,) = struct.unpack_from("!I", payload, 0)
    return count if count > 0 else 1


class MuxStream:
    """One logical stream of a :class:`StreamMux`.

    Speaks the netpipe protocol interface on both sides: ``send`` /
    ``send_frame`` / ``send_eos`` for the producer end,
    ``on_deliver(deliver, deliver_eos, deliver_frame)`` for the consumer
    end.  One process normally uses only one side of a given stream.
    """

    __slots__ = (
        "mux",
        "stream_id",
        "flow",
        "src",
        "dst",
        "credits",
        "window",
        "pending",
        "eos_sent",
        "eos_received",
        "stats",
        "_grant_batch",
        "_to_grant",
        "_deliver",
        "_deliver_eos",
        "_deliver_frame",
    )

    def __init__(
        self,
        mux: "StreamMux",
        stream_id: int,
        credits: int | None = None,
        flow: str | None = None,
    ):
        self.mux = mux
        self.stream_id = stream_id
        self.flow = flow if flow is not None else f"stream-{stream_id}"
        self.src = mux.src
        self.dst = mux.dst
        #: Remaining send window in items; None = flow control off.
        self.credits = credits
        self.window = credits
        #: Locally queued (kind, payload) sends awaiting credit.
        self.pending: list = []
        self.eos_sent = False
        self.eos_received = False
        self.stats = {
            "sent": 0,
            "delivered": 0,
            "retransmits": 0,
            "stalled": 0,
            "credits_granted": 0,
        }
        self._grant_batch = 1 if credits is None else max(1, credits // 2)
        self._to_grant = 0
        self._deliver: Callable[[bytes], None] | None = None
        self._deliver_eos: Callable[[], None] | None = None
        self._deliver_frame: Callable[[bytes], None] | None = None

    # -- producer side ------------------------------------------------------

    def send(self, payload) -> None:
        self._submit(MUX_DATA, payload, 1)

    def send_frame(self, payload) -> None:
        self._submit(MUX_FRAME, payload, _frame_cost(payload))

    def send_eos(self) -> None:
        if self.eos_sent:
            return
        self.eos_sent = True
        if self.pending:
            # EOS must not overtake queued data.
            self.pending.append((MUX_EOS, None, 0))
            return
        self.mux._wire_send(MUX_EOS, self.stream_id, None)

    def _submit(self, kind: int, payload, cost: int) -> None:
        if self.eos_sent:
            raise RemoteError(
                f"stream {self.flow!r}: send after send_eos"
            )
        credits = self.credits
        if self.pending or (credits is not None and credits <= 0):
            # Window exhausted (or draining in order behind earlier
            # stalled sends): queue locally, off the shared link.
            self.pending.append((kind, bytes(payload), cost))
            self.stats["stalled"] += 1
            return
        if credits is not None:
            self.credits = credits - cost
        self.stats["sent"] += 1
        self.mux._wire_send(kind, self.stream_id, payload)

    def _on_credit(self, granted: int) -> None:
        if self.credits is not None:
            self.credits += granted
        self._flush_pending()

    def _flush_pending(self) -> None:
        pending = self.pending
        while pending:
            kind, payload, cost = pending[0]
            if kind != MUX_EOS and (
                self.credits is not None and self.credits <= 0
            ):
                return
            pending.pop(0)
            if self.credits is not None:
                self.credits -= cost
            if kind == MUX_EOS:
                self.mux._wire_send(MUX_EOS, self.stream_id, None)
            else:
                self.stats["sent"] += 1
                self.mux._wire_send(kind, self.stream_id, payload)

    # -- consumer side ------------------------------------------------------

    def on_deliver(
        self,
        deliver: Callable[[bytes], None],
        deliver_eos: Callable[[], None],
        deliver_frame: Callable[[bytes], None] | None = None,
    ) -> None:
        self._deliver = deliver
        self._deliver_eos = deliver_eos
        self._deliver_frame = deliver_frame

    def note_drained(self, items: int) -> None:
        """The consumer actually removed ``items`` from its queue; return
        the credits to the sender, batched to amortize control frames.
        Wired automatically by :class:`~repro.net.netpipe.NetpipeReceiver`.
        """
        if self.window is None:
            return
        self._to_grant += items
        if self._to_grant >= self._grant_batch or self.eos_received:
            granted, self._to_grant = self._to_grant, 0
            self.stats["credits_granted"] += granted
            self.mux._wire_send(
                MUX_CREDIT, self.stream_id, None, arg=granted
            )

    def _emit(self, kind: int, payload) -> None:
        self.stats["delivered"] += 1
        if kind == MUX_EOS:
            self.eos_received = True
            if self._deliver_eos is not None:
                self._deliver_eos()
            return
        if kind == MUX_FRAME:
            if self._deliver_frame is not None:
                self._deliver_frame(payload)
                return
            if self._deliver is None:
                raise RemoteError(
                    f"stream {self.flow!r} has no receiver bound"
                )
            for chunk in decode_batch(payload):
                self._deliver(chunk)
            return
        if self._deliver is None:
            raise RemoteError(f"stream {self.flow!r} has no receiver bound")
        self._deliver(payload)

    # -- protocol-interface odds and ends -----------------------------------

    def receiver_loss_sample(self) -> float:
        return 0.0

    def pump(self, max_messages: int | None = None) -> int:
        """Pump the *shared* transport (routing may deliver to any
        stream); provided so a stream can stand alone as an io source."""
        return self.mux.pump(max_messages)

    def close(self) -> None:
        self.mux.close_stream(self.stream_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MuxStream {self.flow!r} id={self.stream_id} "
            f"credits={self.credits} pending={len(self.pending)}>"
        )


class StreamMux:
    """Multiplexes many :class:`MuxStream` endpoints over one transport.

    Parameters
    ----------
    transport:
        The shared link used for outbound frames (SocketLink end,
        InProcessLink, simulated protocol...).
    inbound:
        The link inbound frames arrive on; defaults to ``transport``
        (duplex links such as a socketpair end).  Pass the reverse-
        direction link when the transport is unidirectional (e.g. a pair
        of InProcessLinks).
    """

    def __init__(
        self,
        transport: Any,
        inbound: Any | None = None,
        src: str | None = None,
        dst: str | None = None,
    ):
        self.transport = transport
        self.inbound = inbound if inbound is not None else transport
        self.src = src if src is not None else getattr(transport, "src", "local")
        self.dst = dst if dst is not None else getattr(transport, "dst", "remote")
        self._streams: dict[int, MuxStream] = {}
        self.stats = {
            "frames_sent": 0,
            "frames_received": 0,
            "credits_sent": 0,
            "credits_received": 0,
            "unknown_stream_drops": 0,
        }
        self.inbound.on_deliver(
            self._rx_plain, self._rx_link_eos, self._rx_frame
        )

    # -- stream lifecycle ----------------------------------------------------

    def open_stream(
        self,
        stream_id: int,
        credits: int | None = None,
        flow: str | None = None,
    ) -> MuxStream:
        """Register (or fetch) the stream called ``stream_id``.

        Both link ends must open a given id to converse on it; ``credits``
        arms per-stream flow control (see the module docstring) and must
        match on the sending end (the receiving end's value sizes the
        grant batching).
        """
        stream = self._streams.get(stream_id)
        if stream is None:
            stream = MuxStream(self, stream_id, credits=credits, flow=flow)
            self._streams[stream_id] = stream
        return stream

    def close_stream(self, stream_id: int) -> None:
        """Forget a stream; late frames for it are counted and dropped."""
        self._streams.pop(stream_id, None)

    @property
    def streams(self) -> dict[int, MuxStream]:
        return dict(self._streams)

    # -- outbound ------------------------------------------------------------

    def _wire_send(
        self, kind: int, stream_id: int, payload, arg: int = 0
    ) -> None:
        header = _HEADER.pack(STREAM_CHUNK_MAGIC, kind, stream_id, arg)
        if payload is None:
            frame = encode_batch([header])
        else:
            frame = encode_batch([header, payload])
        self.stats["frames_sent"] += 1
        if kind == MUX_CREDIT:
            self.stats["credits_sent"] += 1
        self.transport.send_frame(frame)

    def send_link_eos(self) -> None:
        """Close the whole shared link (fans out as EOS to every peer
        stream)."""
        self.transport.send_eos()

    # -- inbound -------------------------------------------------------------

    def _rx_frame(self, payload) -> None:
        views = decode_batch_views(payload)
        if not views:
            raise MarshalError("empty frame on multiplexed link")
        kind, stream_id, arg = decode_stream_header(views[0])
        self.stats["frames_received"] += 1
        stream = self._streams.get(stream_id)
        if stream is None:
            self.stats["unknown_stream_drops"] += 1
            return
        if kind == MUX_CREDIT:
            self.stats["credits_received"] += 1
            stream._on_credit(arg)
            return
        if kind == MUX_EOS:
            stream._emit(MUX_EOS, None)
            return
        if len(views) != 2:
            raise MarshalError(
                f"stream {stream_id} frame has {len(views)} chunks; "
                "expected header + payload"
            )
        stream._emit(kind, views[1])

    def _rx_plain(self, payload) -> None:
        raise MarshalError(
            "un-multiplexed data message on a multiplexed link; all "
            "senders must go through StreamMux streams"
        )

    def _rx_link_eos(self) -> None:
        for stream in list(self._streams.values()):
            if not stream.eos_received:
                stream._emit(MUX_EOS, None)

    # -- io loop -------------------------------------------------------------

    def pump(self, max_messages: int | None = None) -> int:
        return self.inbound.pump(max_messages)

    def wait(self, timeout: float) -> bool:
        wait = getattr(self.inbound, "wait", None)
        return wait(timeout) if wait is not None else False

    def readable(self, timeout: float = 0.0) -> bool:
        readable = getattr(self.inbound, "readable", None)
        return readable(timeout) if readable is not None else False

    def close(self) -> None:
        self.transport.close()
        if self.inbound is not self.transport:
            self.inbound.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StreamMux {self.src}->{self.dst} streams={len(self._streams)} "
            f"sent={self.stats['frames_sent']} "
            f"received={self.stats['frames_received']}>"
        )
