"""The discrete-event network simulator.

One :class:`Network` lives on the same scheduler (and virtual clock) as the
pipelines it connects, so transmission, queueing and propagation delays
interleave naturally with pipeline execution.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.errors import RemoteError
from repro.mbt.scheduler import Scheduler
from repro.net.links import Link
from repro.net.packets import Packet


class Network:
    """A set of named nodes connected by directed links."""

    def __init__(self, scheduler: Scheduler, seed: int = 0):
        self.scheduler = scheduler
        self.rng = random.Random(seed)
        self._links: dict[tuple[str, str], Link] = {}
        self._nodes: set[str] = set()
        #: flow id -> receive callback (called with the packet on arrival).
        self._receivers: dict[str, Callable[[Packet], None]] = {}
        #: Saved loss rates of links currently forced down (fault injection).
        self._downed: dict[tuple[str, str], float] = {}

    # ------------------------------------------------------------ topology

    def add_node(self, name: str) -> str:
        self._nodes.add(name)
        return name

    @property
    def nodes(self) -> set[str]:
        return set(self._nodes)

    def add_link(
        self,
        src: str,
        dst: str,
        bandwidth_bps: float = 10_000_000.0,
        delay: float = 0.010,
        jitter: float = 0.0,
        loss_rate: float = 0.0,
        queue_packets: int = 64,
        symmetric: bool = True,
    ) -> Link:
        """Create a link (and, by default, its reverse twin for acks)."""
        self._nodes.update((src, dst))
        link = Link(
            src=src,
            dst=dst,
            bandwidth_bps=bandwidth_bps,
            delay=delay,
            jitter=jitter,
            loss_rate=loss_rate,
            queue_packets=queue_packets,
        )
        self._links[link.key] = link
        if symmetric and (dst, src) not in self._links:
            self.add_link(
                dst,
                src,
                bandwidth_bps=bandwidth_bps,
                delay=delay,
                jitter=jitter,
                loss_rate=loss_rate,
                queue_packets=queue_packets,
                symmetric=False,
            )
        return link

    def link(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise RemoteError(f"no link {src!r} -> {dst!r}") from None

    # ------------------------------------------------------------ transfer

    def register_receiver(
        self, flow: str, receive: Callable[[Packet], None]
    ) -> None:
        if flow in self._receivers:
            raise RemoteError(f"duplicate receiver for flow {flow!r}")
        self._receivers[flow] = receive

    def unregister_receiver(self, flow: str) -> None:
        self._receivers.pop(flow, None)

    def transmit(self, src: str, dst: str, packet: Packet) -> bool:
        """Send a packet; returns False when it was dropped on the way.

        Delivery happens asynchronously at the simulated arrival time, by
        invoking the flow's registered receive callback.
        """
        link = self.link(src, dst)
        now = self.scheduler.now()
        packet.sent_at = now
        arrival = link.admit(now, packet, self.rng)
        if arrival is None:
            return False
        receive = self._receivers.get(packet.flow)
        if receive is None:
            raise RemoteError(
                f"flow {packet.flow!r} has no registered receiver"
            )
        self.scheduler.at(arrival, lambda: receive(packet))
        return True

    # ------------------------------------------------------------ faults

    def take_link_down(self, src: str, dst: str) -> None:
        """Force a link down: every packet admitted while down is lost.

        Used by :mod:`repro.check.faults` to model link flaps.  Idempotent;
        the pre-flap loss rate is restored by :meth:`bring_link_up`.
        """
        link = self.link(src, dst)
        if (src, dst) not in self._downed:
            self._downed[(src, dst)] = link.loss_rate
            link.loss_rate = 1.0

    def bring_link_up(self, src: str, dst: str) -> None:
        """Restore a link taken down by :meth:`take_link_down`."""
        saved = self._downed.pop((src, dst), None)
        if saved is not None:
            self.link(src, dst).loss_rate = saved

    def link_is_down(self, src: str, dst: str) -> bool:
        return (src, dst) in self._downed

    # ------------------------------------------------------------ QoS views

    def control_latency(self, src: str, dst: str) -> float:
        """One-way latency for small control messages (events, queries)."""
        if src == dst or not src or not dst:
            return 0.0
        link = self._links.get((src, dst))
        if link is None:
            return 0.0
        return link.delay

    def rtt(self, a: str, b: str) -> float:
        return self.control_latency(a, b) + self.control_latency(b, a)
