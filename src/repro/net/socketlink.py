"""Real-socket netpipe transports: the deployment data plane.

The simulated :class:`~repro.net.protocols.Protocol` family carries
netpipe flows inside one discrete-event scheduler.  A sharded deployment
(:mod:`repro.deploy`) needs the same flows carried **between OS
processes**, so :class:`SocketLink` implements the protocol interface the
netpipe pair already speaks — ``send`` / ``send_frame`` / ``send_eos`` on
the producer side, ``on_deliver`` callbacks on the consumer side — over a
real ``socket.socketpair()`` or TCP stream.  Because only the transport
changes, ``marshal.encode_batch`` / ``EncodedRun`` zero-copy framing,
flow-trace TLV side-chunks and QoS property stamping all transfer
unchanged.

Wire format: a 5-byte header per message — one kind byte (data / frame /
eos) and a ``!I`` payload length — followed by the payload.  TCP/socketpair
byte streams preserve order and never drop, so there is no
sequence/retransmit machinery; OS socket buffers provide natural
backpressure (a fast producer blocks in ``sendall`` until the consumer
drains).

:class:`InProcessLink` is the co-simulation twin used by
``Deployment.simulate()``: the same interface with synchronous in-memory
delivery, so a sharded cut can run inside ONE engine/scheduler where the
refinement checker can explore schedules deterministically.
"""

from __future__ import annotations

import select
import socket
import struct
from typing import Any, Callable

from repro.errors import MarshalError, RemoteError

#: Message kinds on the wire (one byte).
_DATA = 0
_FRAME = 1
_EOS = 2

_HEADER = struct.Struct("!BI")
_RECV_CHUNK = 1 << 16
#: Payloads up to this size are copied into the header's send call.
_COALESCE_LIMIT = 1 << 12


def _set_bufsize(sock: socket.socket, bufsize: int | None) -> None:
    if bufsize is None:
        return
    for opt in (socket.SO_SNDBUF, socket.SO_RCVBUF):
        try:
            sock.setsockopt(socket.SOL_SOCKET, opt, bufsize)
        except OSError:  # pragma: no cover - platform cap; best effort
            pass


class SocketLink:
    """Netpipe transport over a real stream socket.

    Parameters
    ----------
    sock_out:
        Socket used for sends; ``None`` for a receive-only end.
    sock_in:
        Socket used for receives; ``None`` for a send-only end.  May be
        the same object as ``sock_out`` (full duplex, the deployment
        case: each shard wraps its own end of a socketpair).
    src / dst:
        Node names stamped onto the netpipe components' ``location``.
    """

    def __init__(
        self,
        sock_out: socket.socket | None = None,
        sock_in: socket.socket | None = None,
        src: str = "local",
        dst: str = "remote",
        flow: str = "flow",
    ):
        self._sock_out = sock_out
        self._sock_in = sock_in
        self.src = src
        self.dst = dst
        self.flow = flow
        self.stats = {
            "sent": 0,
            "delivered": 0,
            "retransmits": 0,
            "bytes_sent": 0,
            "bytes_received": 0,
            "frames_sent": 0,
        }
        self.eos_sent = False
        self.eos_received = False
        self.peer_closed = False
        self._buf = bytearray()
        self._deliver: Callable[[bytes], None] | None = None
        self._deliver_eos: Callable[[], None] | None = None
        self._deliver_frame: Callable[[bytes], None] | None = None

    # -- construction helpers ----------------------------------------------

    @classmethod
    def pair(
        cls,
        src: str = "shard-0",
        dst: str = "shard-1",
        flow: str = "flow",
        bufsize: int | None = None,
    ) -> tuple["SocketLink", "SocketLink"]:
        """A connected (sender-end, receiver-end) link pair over a
        ``socket.socketpair()`` — one object per process end.

        ``bufsize`` raises SO_SNDBUF/SO_RCVBUF on both ends: a
        multiplexed link carrying thousands of per-stream frames needs
        headroom beyond the OS default (tiny messages pay large per-skb
        accounting), or a burst from many tenants can block the sender
        before the peer's pump loop gets a turn.
        """
        a, b = socket.socketpair()
        _set_bufsize(a, bufsize)
        _set_bufsize(b, bufsize)
        tx = cls(sock_out=a, sock_in=a, src=src, dst=dst, flow=flow)
        rx = cls(sock_out=b, sock_in=b, src=src, dst=dst, flow=flow)
        return tx, rx

    @classmethod
    def loopback(
        cls, src: str = "local", dst: str = "local", flow: str = "flow"
    ) -> "SocketLink":
        """ONE link whose sends come back to its own receive side through
        a real socketpair — a single-process netpipe over real sockets
        (``make_netpipe(transport=SocketLink.loopback())``).  Sharing one
        object between sender and receiver keeps the refinement checker's
        sender/receiver pairing (``id(protocol)``) intact."""
        a, b = socket.socketpair()
        return cls(sock_out=a, sock_in=b, src=src, dst=dst, flow=flow)

    @classmethod
    def tcp_pair(
        cls,
        src: str = "shard-0",
        dst: str = "shard-1",
        flow: str = "flow",
        host: str = "127.0.0.1",
    ) -> tuple["SocketLink", "SocketLink"]:
        """Like :meth:`pair` but over a real localhost TCP connection."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.bind((host, 0))
            listener.listen(1)
            client = socket.create_connection(listener.getsockname())
            server, _ = listener.accept()
        finally:
            listener.close()
        client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        server.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        tx = cls(sock_out=client, sock_in=client, src=src, dst=dst, flow=flow)
        rx = cls(sock_out=server, sock_in=server, src=src, dst=dst, flow=flow)
        return tx, rx

    # -- sender side --------------------------------------------------------

    def _sendall(self, kind: int, payload) -> None:
        if self._sock_out is None:
            raise RemoteError(
                f"link {self.flow!r} has no outbound socket; this is the "
                "receive-only end"
            )
        length = len(payload)
        header = _HEADER.pack(kind, length)
        if length and length <= _COALESCE_LIMIT:
            # One syscall (and, on AF_UNIX, one skb) per small message:
            # a multiplexed link sends thousands of tiny per-stream
            # frames, and per-message kernel overhead dominates their
            # buffer accounting.
            self._sock_out.sendall(header + bytes(payload))
        else:
            self._sock_out.sendall(header)
            if length:
                self._sock_out.sendall(payload)
        self.stats["bytes_sent"] += length

    def send(self, payload) -> None:
        self._sendall(_DATA, payload)
        self.stats["sent"] += 1

    def send_frame(self, payload) -> None:
        self._sendall(_FRAME, payload)
        self.stats["sent"] += 1
        self.stats["frames_sent"] += 1

    def send_eos(self) -> None:
        if self.eos_sent:
            return
        self.eos_sent = True
        self._sendall(_EOS, b"")

    # -- receiver side ------------------------------------------------------

    def on_deliver(
        self,
        deliver: Callable[[bytes], None],
        deliver_eos: Callable[[], None],
        deliver_frame: Callable[[bytes], None] | None = None,
    ) -> None:
        self._deliver = deliver
        self._deliver_eos = deliver_eos
        self._deliver_frame = deliver_frame

    def receiver_loss_sample(self) -> float:
        """Stream sockets are reliable and in order: wire loss is 0."""
        return 0.0

    def fileno(self) -> int:
        if self._sock_in is None:
            raise RemoteError(f"link {self.flow!r} has no inbound socket")
        return self._sock_in.fileno()

    def readable(self, timeout: float = 0.0) -> bool:
        """True when at least one byte (or peer close) is waiting."""
        if self._sock_in is None or self.peer_closed:
            return False
        ready, _, _ = select.select([self._sock_in], [], [], timeout)
        return bool(ready)

    def pump(self, max_messages: int | None = None) -> int:
        """Drain whatever the socket holds *right now* into the bound
        receiver callbacks; returns the number of delivered messages.

        Non-blocking: returns 0 immediately when nothing is waiting.  The
        shard worker loop alternates ``engine.run()`` with ``pump()``
        (see :meth:`repro.runtime.engine.Engine.run_with_io`).
        """
        if self._sock_in is None:
            return 0
        delivered = 0
        while max_messages is None or delivered < max_messages:
            while self.readable(0.0):
                try:
                    chunk = self._sock_in.recv(_RECV_CHUNK)
                except (BlockingIOError, InterruptedError):
                    break
                if not chunk:
                    self.peer_closed = True
                    break
                self._buf += chunk
            n = self._dispatch(
                None if max_messages is None else max_messages - delivered
            )
            delivered += n
            if n == 0:
                break
        if self.peer_closed and self._buf and max_messages is None:
            # All complete messages were dispatched above, so leftover
            # bytes can only be a truncated message.
            raise MarshalError(
                f"link {self.flow!r}: peer closed mid-message "
                f"({len(self._buf)} stray bytes)"
            )
        return delivered

    def wait(self, timeout: float) -> bool:
        """Block up to ``timeout`` seconds for inbound bytes."""
        return self.readable(timeout)

    def _dispatch(self, limit: int | None) -> int:
        buf = self._buf
        count = 0
        while limit is None or count < limit:
            if len(buf) < _HEADER.size:
                break
            kind, length = _HEADER.unpack_from(buf)
            end = _HEADER.size + length
            if len(buf) < end:
                break
            payload = bytes(buf[_HEADER.size:end])
            del buf[:end]
            self._emit(kind, payload)
            count += 1
        return count

    def _emit(self, kind: int, payload: bytes) -> None:
        if kind == _EOS:
            if self._deliver_eos is None:
                raise RemoteError(
                    f"link {self.flow!r} has no receiver bound"
                )
            self.eos_received = True
            self.stats["delivered"] += 1
            self._deliver_eos()
            return
        if self._deliver is None:
            raise RemoteError(f"link {self.flow!r} has no receiver bound")
        self.stats["delivered"] += 1
        self.stats["bytes_received"] += len(payload)
        if kind == _FRAME:
            if self._deliver_frame is not None:
                self._deliver_frame(payload)
                return
            from repro.net.marshal import decode_batch

            for chunk in decode_batch(payload):
                self._deliver(chunk)
            return
        if kind != _DATA:
            raise MarshalError(
                f"link {self.flow!r}: unknown wire kind {kind}"
            )
        self._deliver(payload)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        for sock in {
            s for s in (self._sock_out, self._sock_in) if s is not None
        }:
            try:
                sock.close()
            except OSError:  # pragma: no cover - best effort
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SocketLink {self.flow!r} {self.src}->{self.dst} "
            f"sent={self.stats['sent']} delivered={self.stats['delivered']}>"
        )


class InProcessLink:
    """Synchronous in-memory transport with the protocol interface.

    ``Deployment.simulate()`` realizes every planner cut with one of
    these so the whole sharded structure runs inside a single engine:
    sends deliver immediately into the receiver callbacks (a zero-delay
    reliable wire), keeping runs deterministic and schedule exploration
    (:func:`repro.check.check_refinement`) applicable.  Sender and
    receiver share the one object, which is also what lets
    ``lossy_channels`` pair the two netpipe halves across the cut.

    ``loss_rate`` > 0 turns it into a seeded lossy datagram wire (each
    plain data message may be dropped), for exercising wire-loss
    attribution without a network simulator.
    """

    def __init__(
        self,
        src: str = "shard-0",
        dst: str = "shard-1",
        flow: str = "flow",
        loss_rate: float = 0.0,
        seed: int = 0,
    ):
        import random

        self.src = src
        self.dst = dst
        self.flow = flow
        self.loss_rate = loss_rate
        self._rng = random.Random(seed)
        self.stats = {"sent": 0, "delivered": 0, "retransmits": 0,
                      "lost": 0}
        self.eos_sent = False
        self.eos_received = False
        self._deliver: Callable[[bytes], None] | None = None
        self._deliver_eos: Callable[[], None] | None = None
        self._deliver_frame: Callable[[bytes], None] | None = None

    def on_deliver(
        self,
        deliver: Callable[[bytes], None],
        deliver_eos: Callable[[], None],
        deliver_frame: Callable[[bytes], None] | None = None,
    ) -> None:
        self._deliver = deliver
        self._deliver_eos = deliver_eos
        self._deliver_frame = deliver_frame

    def _lost(self) -> bool:
        return self.loss_rate > 0.0 and self._rng.random() < self.loss_rate

    def send(self, payload) -> None:
        self.stats["sent"] += 1
        if self._lost():
            self.stats["lost"] += 1
            return
        if self._deliver is None:
            raise RemoteError(f"link {self.flow!r} has no receiver bound")
        self.stats["delivered"] += 1
        self._deliver(bytes(payload))

    def send_frame(self, payload) -> None:
        self.stats["sent"] += 1
        if self._lost():
            self.stats["lost"] += 1
            return
        self.stats["delivered"] += 1
        payload = bytes(payload)
        if self._deliver_frame is not None:
            self._deliver_frame(payload)
            return
        from repro.net.marshal import decode_batch

        if self._deliver is None:
            raise RemoteError(f"link {self.flow!r} has no receiver bound")
        for chunk in decode_batch(payload):
            self._deliver(chunk)

    def send_eos(self) -> None:
        if self.eos_sent:
            return
        self.eos_sent = True
        self.eos_received = True
        if self._deliver_eos is None:
            raise RemoteError(f"link {self.flow!r} has no receiver bound")
        self._deliver_eos()

    def receiver_loss_sample(self) -> float:
        return 0.0

    def pump(self, max_messages: int | None = None) -> int:
        return 0  # delivery is synchronous; nothing is ever queued

    def close(self) -> None:
        pass
