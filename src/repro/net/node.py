"""Nodes: placement of components on machines.

A :class:`Node` stamps the components created through it with a
``location`` — the Typespec property "that is changed only by netpipes"
(section 2.4).  Sources created on a node produce flows located there;
sinks created on a node only accept flows located there, so forgetting a
netpipe between nodes is caught by ordinary type checking.
"""

from __future__ import annotations

from typing import Any, Type, TypeVar

from repro.components.sinks import ActiveSink, Sink
from repro.components.sources import ActiveSource, Source
from repro.core.component import Component
from repro.core.typespec import Typespec, props
from repro.net.network import Network

C = TypeVar("C", bound=Component)


class Node:
    """One machine in the simulated distributed system."""

    def __init__(self, name: str, network: Network):
        self.name = name
        self.network = network
        network.add_node(name)
        self.components: list[Component] = []

    def create(self, component_cls: Type[C], *args: Any, **kwargs: Any) -> C:
        """Instantiate a component placed on this node."""
        component = component_cls(*args, **kwargs)
        return self.place(component)

    def place(self, component: C) -> C:
        """Record an existing component as living on this node and stamp
        its location into its flow constraints."""
        component.location = self.name
        if isinstance(component, Source):
            component.flow_spec = component.flow_spec.with_props(
                **{props.LOCATION: self.name}
            )
        elif isinstance(component, ActiveSource):
            # Active sources stamp location through output_props.
            merged = dict(component.output_props)
            merged[props.LOCATION] = self.name
            component.output_props = merged
        elif isinstance(component, (Sink, ActiveSink)):
            component.input_spec = component.input_spec.with_props(
                **{props.LOCATION: self.name}
            )
        self.components.append(component)
        return component

    def typespec_of(self, component: Component) -> Typespec:
        """Local helper for remote Typespec queries (see remote.py)."""
        return component.accepts()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name!r} ({len(self.components)} components)>"
