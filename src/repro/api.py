"""The fluent application facade: describe, configure, run, deploy.

One import gives the whole lifecycle, with every policy knob a chainable
``with_*`` step and execution split from description — the same program
value can be run in-process, traced, certified, or sharded over N cores
without touching the program itself::

    from repro.api import Pipeline

    app = (
        Pipeline.from_source("counting(limit=24) >> greedy_pump >> "
                             "buffer(4) >> greedy_pump >> collect")
        .with_batching(8)
        .with_tracing(sample_every=1)
    )
    built = app.run()                    # in-process, telemetry attached
    result = app.deploy(shards=2)        # two OS processes, wire-bridged
    cert = app.certify(shards=2)         # sharded refines single-core

Facade objects are immutable: each ``with_*`` returns a new one, so a
base description can fan out into variants safely.  ``Pipeline`` here is
the *application* facade; the structural composition class of the same
name lives at :class:`repro.core.composition.Pipeline`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.composition import Pipeline as CorePipeline
from repro.errors import DeployError


@dataclass
class BuiltApp:
    """A built, runnable engine plus whatever telemetry was requested."""

    engine: Any
    telemetry: Any = None
    tracer: Any = None
    slo: Any = None

    def run(
        self, until: float | None = None, max_steps: int | None = None
    ) -> "BuiltApp":
        """Start and run: to EOS, or to ``until`` then stop and drain."""
        engine = self.engine
        engine.start()
        engine.run(until=until, max_steps=max_steps)
        if until is not None:
            engine.stop()
            engine.run(max_steps=max_steps or 1_000_000)
        if self.tracer is not None:
            self.tracer.finalize_inflight()
        return self

    @property
    def stats(self):
        return self.engine.stats

    def prometheus(self) -> str:
        if self.telemetry is None:
            raise DeployError(
                "no telemetry attached; add .with_metrics() first"
            )
        return self.telemetry.prometheus()


@dataclass(frozen=True)
class Pipeline:
    """Immutable fluent builder over a deployment *program*.

    The program is either a microlanguage source string, a zero-arg
    builder callable returning a composed core Pipeline, or a live core
    Pipeline (single-shard only — live graphs cannot be shipped to
    worker processes).
    """

    program: Any
    backend: str = "generator"
    batch_max: int | None = None
    trace: bool = False
    trace_limit: int | None = None
    metrics: bool = False
    flow_sample: int | None = None
    slo_latency: float | None = None
    engine_kwargs: dict[str, Any] = field(default_factory=dict)

    # ----------------------------------------------------------- sources

    @classmethod
    def from_source(cls, source: str, registry: Any = None) -> "Pipeline":
        """From a microlanguage description (fails fast on syntax)."""
        from repro.lang.parser import parse

        parse(source)
        if registry is not None:
            from repro.lang.builder import build

            return cls(program=lambda: build(source, registry).pipeline)
        return cls(program=source)

    @classmethod
    def from_builder(
        cls, builder: Callable[[], CorePipeline]
    ) -> "Pipeline":
        """From a zero-arg callable returning a fresh core Pipeline.

        Make it a module-level function (or ``functools.partial`` of
        one) to keep spawn-mode deployment available."""
        return cls(program=builder)

    @classmethod
    def from_pipeline(cls, pipe: CorePipeline) -> "Pipeline":
        """From a live composed graph (in-process execution only)."""
        return cls(program=pipe)

    # ------------------------------------------------------ with_* steps

    def _replace(self, **changes: Any) -> "Pipeline":
        return dataclasses.replace(self, **changes)

    def with_batching(self, batch_max: int) -> "Pipeline":
        """Move up to ``batch_max`` items per pump cycle (PR 4 plane)."""
        return self._replace(batch_max=batch_max)

    def with_backend(self, backend: str) -> "Pipeline":
        """``"generator"`` (default) or ``"thread"`` suspension backend."""
        return self._replace(backend=backend)

    def with_trace(self, limit: int | None = None) -> "Pipeline":
        """Record the scheduler event trace (optionally ring-bounded)."""
        return self._replace(trace=True, trace_limit=limit)

    def with_metrics(self) -> "Pipeline":
        """Attach the metrics registry + exporters on build."""
        return self._replace(metrics=True)

    def with_tracing(self, sample_every: int = 1) -> "Pipeline":
        """Attach causal flow tracing, sampling 1-in-N source items."""
        return self._replace(flow_sample=sample_every)

    def with_slo(self, latency: float = 0.1) -> "Pipeline":
        """Attach the built-in burn-rate SLOs (implies metrics+tracing)."""
        return self._replace(slo_latency=latency)

    def with_engine_options(self, **kwargs: Any) -> "Pipeline":
        """Extra keyword arguments forwarded to every Engine built."""
        merged = {**self.engine_kwargs, **kwargs}
        return self._replace(engine_kwargs=merged)

    # ------------------------------------------------------- realization

    def builder(self) -> Callable[[], Any]:
        """A zero-arg callable building a fresh, un-run Engine — the
        form the refinement checker and schedule explorer consume."""

        def build_engine():
            from repro.deploy.worker import build_program
            from repro.runtime.engine import Engine

            return Engine(
                build_program(self.program),
                backend=self.backend,
                batch_max=self.batch_max,
                trace=self.trace,
                trace_limit=self.trace_limit,
                **self.engine_kwargs,
            )

        build_engine.__name__ = "api_pipeline_builder"
        return build_engine

    def build(self) -> BuiltApp:
        """Build the engine and attach the requested telemetry."""
        engine = self.builder()()
        telemetry = tracer = slo = None
        want_metrics = self.metrics or self.slo_latency is not None
        want_tracing = (
            self.flow_sample is not None or self.slo_latency is not None
        )
        if want_metrics:
            from repro.obs import Telemetry

            telemetry = Telemetry().attach(engine)
        if want_tracing:
            from repro.obs.flow import FlowTracer

            tracer = FlowTracer(
                sample_every=self.flow_sample or 1,
                registry=telemetry.registry if telemetry else None,
            ).attach(engine)
        if self.slo_latency is not None:
            from repro.obs.slo import Objective, SloEngine

            slo = SloEngine(
                [
                    Objective(
                        "e2e-latency", "latency_p99",
                        target=self.slo_latency,
                    ),
                    Objective(
                        "delivery", "delivered_fraction", target=0.99
                    ),
                ],
                registry=telemetry.registry if telemetry else None,
            ).attach(tracer)
        return BuiltApp(
            engine=engine, telemetry=telemetry, tracer=tracer, slo=slo
        )

    def run(
        self, until: float | None = None, max_steps: int | None = None
    ) -> BuiltApp:
        """Build and run in-process; returns the :class:`BuiltApp`."""
        return self.build().run(until=until, max_steps=max_steps)

    # -------------------------------------------------------- deployment

    def deployment(
        self,
        placement: Any = None,
        *,
        shards: int | None = None,
        **kwargs: Any,
    ):
        """A configured :class:`~repro.deploy.Deployment` (not yet run)."""
        from repro.deploy import Deployment

        return Deployment(
            self.program,
            placement,
            shards=shards,
            backend=self.backend,
            batch_max=self.batch_max,
            telemetry=self.metrics,
            engine_kwargs=dict(self.engine_kwargs),
            **kwargs,
        )

    def deploy(
        self,
        placement: Any = None,
        *,
        shards: int | None = None,
        timeout: float | None = None,
        **kwargs: Any,
    ):
        """Plan, spawn, run and gather: multi-core execution in one call."""
        return self.deployment(
            placement, shards=shards, **kwargs
        ).run(timeout=timeout)

    def certify(
        self,
        placement: Any = None,
        *,
        shards: int | None = None,
        seeds: int = 25,
        **kwargs: Any,
    ):
        """Certify the sharded topology refines this program."""
        return self.deployment(placement, shards=shards).certify(
            seeds=seeds, **kwargs
        )
