"""Deprecation shims for pre-Deployment-API entry points.

The PR that introduced :mod:`repro.api` and :mod:`repro.deploy` kept
every old entry point working — they delegate to the new API and emit a
:class:`DeprecationWarning` naming their replacement.  The migration
table lives in ``docs/RUNTIME.md``.
"""

from __future__ import annotations

import warnings


def warn_deprecated(old: str, new: str, *, stacklevel: int = 3) -> None:
    """Emit the standard migration warning for a legacy entry point."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead "
        "(see docs/RUNTIME.md for the migration table)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
