"""Sensors: periodic measurements of pipeline state."""

from __future__ import annotations

from typing import Callable

from repro.components.buffers import Buffer
from repro.core.component import Component
from repro.errors import FeedbackError


class Sensor:
    """Base class: ``sample()`` returns the current measurement."""

    def sample(self) -> float:
        raise NotImplementedError

    def bind(self, engine) -> None:
        """Late-bind the sensor to the engine it ends up attached to.

        Called by :meth:`repro.feedback.loop.FeedbackLoop.attach`; the
        default is a no-op.  Sensors that need a clock (``RateSensor``)
        use it to default to the pipeline's virtual clock.
        """


class BufferFillSensor(Sensor):
    """Fill fraction (0..1) of a buffer — the classic real-rate signal
    (Steere et al. [27]: "adjust CPU allocations among pipeline stages
    according to feedback from buffer fill levels")."""

    def __init__(self, buffer: Buffer):
        self.buffer = buffer

    def sample(self) -> float:
        return self.buffer.fill_fraction


class RateSensor(Sensor):
    """Items/second through a component since the previous sample.

    Without an explicit ``now`` clock the sensor reports raw per-sample
    deltas *until* it is attached to an engine through a feedback loop, at
    which point it binds the pipeline's own (virtual) clock and reports
    true items/second — the natural default, since the loop's sampling
    period runs on that same clock.
    """

    def __init__(self, component: Component, counter: str = "items_out",
                 now: Callable[[], float] | None = None):
        self.component = component
        self.counter = counter
        self._now = now
        self._last_count = 0
        self._last_time: float | None = None

    def bind(self, engine) -> None:
        if self._now is None:
            self._now = engine.scheduler.now

    def sample(self) -> float:
        count = self.component.stats.get(self.counter, 0)
        if self._now is None:
            # Without a clock, report the raw delta per sample period.
            delta = count - self._last_count
            self._last_count = count
            return float(delta)
        now = self._now()
        if self._last_time is None or now <= self._last_time:
            rate = 0.0
        else:
            rate = (count - self._last_count) / (now - self._last_time)
        self._last_count = count
        self._last_time = now
        return rate


class LossSensor(Sensor):
    """Observed loss fraction from sequence-number gaps.

    Feed it arriving sequence numbers (e.g. from a consumer-side component
    via ``observe``); each ``sample()`` reports the loss fraction since the
    previous sample.  This is the Figure-1 consumer-side sensor.
    """

    def __init__(self):
        self._highest = -1
        self._received = 0
        self._window_expected = 0
        self._window_received = 0

    def observe(self, seq: int) -> None:
        if seq > self._highest:
            self._window_expected += seq - self._highest
            self._highest = seq
        self._received += 1
        self._window_received += 1

    def sample(self) -> float:
        expected = self._window_expected
        received = self._window_received
        self._window_expected = 0
        self._window_received = 0
        if expected <= 0:
            return 0.0
        return max(0.0, 1.0 - received / expected)


class CallbackSensor(Sensor):
    """Wraps any zero-argument callable as a sensor."""

    def __init__(self, fn: Callable[[], float]):
        self._fn = fn

    def sample(self) -> float:
        return float(self._fn())


class SloBurnSensor(Sensor):
    """Reads an SLO burn rate from an :class:`repro.obs.slo.SloEngine`
    (duck-typed: anything with ``objectives`` and ``burn_rates()``).

    The natural control signal for adaptation: a burn rate of 1.0 means
    the error budget is being spent exactly as provisioned, so a
    controller holding the sensor at ``setpoint=1.0`` sheds load (raise
    drop level, slow the pump) precisely when the SLO is threatened and
    backs off when budget accrues::

        slo = SloEngine([Objective("e2e", "latency_p99", 0.05)],
                        registry=registry).attach(tracer)
        burn = SloBurnSensor(slo, "e2e")
        FeedbackLoop(sensor=burn, controller=..., actuator=...)

    ``window`` selects which sliding window to read (default: the
    objective's shortest — the most reactive one); ``key`` selects the
    stream/tenant series for keyed objectives.
    """

    def __init__(
        self,
        slo_engine,
        objective: str,
        key: str = "",
        window: float | None = None,
        default: float = 0.0,
    ):
        names = [o.name for o in slo_engine.objectives]
        if objective not in names:
            raise FeedbackError(
                f"unknown SLO objective {objective!r}; have {names}"
            )
        self.slo_engine = slo_engine
        self.objective = objective
        self.key = key
        if window is None:
            spec = next(
                o for o in slo_engine.objectives if o.name == objective
            )
            window = spec.windows[0]
        self.window = float(window)
        self.default = float(default)

    def sample(self) -> float:
        rates = self.slo_engine.burn_rates()
        return rates.get(
            (self.objective, self.key, self.window), self.default
        )


class MetricSensor(Sensor):
    """Reads a metric from an observability registry (duck-typed against
    :class:`repro.obs.metrics.MetricsRegistry`).

    This closes the loop the observability layer opens: the runtime
    publishes buffer fill, stage latency and loss into one registry, and
    controllers consume the *same* numbers the operator sees::

        telemetry = Telemetry().attach(engine)
        latency = MetricSensor(
            telemetry.registry, "repro_stage_latency_seconds",
            stat="p95", labels={"stage": "pump-1"},
        )
        FeedbackLoop(sensor=latency, controller=..., actuator=...)

    ``stat`` selects what to read: ``"value"`` (counters/gauges),
    ``"rate"`` (value delta per second since the previous sample), or a
    histogram aggregate (``"p50"``, ``"p95"``, ``"p99"``, ``"mean"``).
    A metric that does not exist yet samples as ``default`` — registries
    create histograms lazily, often after the loop starts sampling.
    """

    _HIST_STATS = frozenset({"p50", "p95", "p99", "mean"})

    def __init__(
        self,
        registry,
        name: str,
        stat: str = "value",
        labels: dict | None = None,
        default: float = 0.0,
        now: Callable[[], float] | None = None,
    ):
        if stat not in self._HIST_STATS and stat not in ("value", "rate"):
            raise ValueError(f"unknown metric stat {stat!r}")
        self.registry = registry
        self.name = name
        self.stat = stat
        self.labels = dict(labels or {})
        self.default = float(default)
        self._now = now
        self._last_value: float | None = None
        self._last_time: float | None = None

    def bind(self, engine) -> None:
        if self._now is None:
            self._now = engine.scheduler.now

    def _metric(self):
        return self.registry.get(self.name, **self.labels)

    def sample(self) -> float:
        metric = self._metric()
        if metric is None:
            return self.default
        if self.stat in self._HIST_STATS:
            return float(getattr(metric, self.stat))
        value = float(metric.value)
        if self.stat == "value":
            return value
        # rate: delta per second (per sample period without a clock).
        last_value, self._last_value = self._last_value, value
        if self._now is None:
            return value - last_value if last_value is not None else 0.0
        now = self._now()
        last_time, self._last_time = self._last_time, now
        if last_value is None or last_time is None or now <= last_time:
            return 0.0
        return (value - last_value) / (now - last_time)
