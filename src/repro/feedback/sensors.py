"""Sensors: periodic measurements of pipeline state."""

from __future__ import annotations

from typing import Callable

from repro.components.buffers import Buffer
from repro.core.component import Component


class Sensor:
    """Base class: ``sample()`` returns the current measurement."""

    def sample(self) -> float:
        raise NotImplementedError


class BufferFillSensor(Sensor):
    """Fill fraction (0..1) of a buffer — the classic real-rate signal
    (Steere et al. [27]: "adjust CPU allocations among pipeline stages
    according to feedback from buffer fill levels")."""

    def __init__(self, buffer: Buffer):
        self.buffer = buffer

    def sample(self) -> float:
        return self.buffer.fill_fraction


class RateSensor(Sensor):
    """Items/second through a component since the previous sample."""

    def __init__(self, component: Component, counter: str = "items_out",
                 now: Callable[[], float] | None = None):
        self.component = component
        self.counter = counter
        self._now = now
        self._last_count = 0
        self._last_time: float | None = None

    def sample(self) -> float:
        count = self.component.stats.get(self.counter, 0)
        if self._now is None:
            # Without a clock, report the raw delta per sample period.
            delta = count - self._last_count
            self._last_count = count
            return float(delta)
        now = self._now()
        if self._last_time is None or now <= self._last_time:
            rate = 0.0
        else:
            rate = (count - self._last_count) / (now - self._last_time)
        self._last_count = count
        self._last_time = now
        return rate


class LossSensor(Sensor):
    """Observed loss fraction from sequence-number gaps.

    Feed it arriving sequence numbers (e.g. from a consumer-side component
    via ``observe``); each ``sample()`` reports the loss fraction since the
    previous sample.  This is the Figure-1 consumer-side sensor.
    """

    def __init__(self):
        self._highest = -1
        self._received = 0
        self._window_expected = 0
        self._window_received = 0

    def observe(self, seq: int) -> None:
        if seq > self._highest:
            self._window_expected += seq - self._highest
            self._highest = seq
        self._received += 1
        self._window_received += 1

    def sample(self) -> float:
        expected = self._window_expected
        received = self._window_received
        self._window_expected = 0
        self._window_received = 0
        if expected <= 0:
            return 0.0
        return max(0.0, 1.0 - received / expected)


class CallbackSensor(Sensor):
    """Wraps any zero-argument callable as a sensor."""

    def __init__(self, fn: Callable[[], float]):
        self._fn = fn

    def sample(self) -> float:
        return float(self._fn())
