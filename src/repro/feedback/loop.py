"""The feedback loop: sensor → controller → actuator on a period."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import FeedbackError
from repro.feedback.actuators import Actuator
from repro.feedback.controllers import Controller
from repro.feedback.sensors import Sensor

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import Engine


class FeedbackLoop:
    """Samples a sensor every ``period`` seconds, runs the controller, and
    actuates through the event service.

    Attach it to an engine before the run::

        loop = FeedbackLoop(sensor, controller, actuator, period=0.5)
        loop.attach(engine)
    """

    def __init__(
        self,
        sensor: Sensor,
        controller: Controller,
        actuator: Actuator,
        period: float = 0.5,
        name: str = "feedback-loop",
    ):
        if period <= 0:
            raise FeedbackError("feedback period must be positive")
        self.sensor = sensor
        self.controller = controller
        self.actuator = actuator
        self.period = period
        self.name = name
        self.running = False
        #: (time, measurement, output) per sample, for analysis.
        self.history: list[tuple[float, float, float]] = []
        self._engine: "Engine | None" = None

    def attach(self, engine: "Engine") -> "FeedbackLoop":
        self._engine = engine
        engine.setup()
        engine.add_service(self)  # engine.stop() also stops this loop
        self.sensor.bind(engine)
        self.actuator.bind(engine.events)
        self.running = True
        engine.scheduler.after(self.period, self._tick)
        return self

    def stop(self) -> None:
        self.running = False

    def _tick(self) -> None:
        if not self.running or self._engine is None:
            return
        scheduler = self._engine.scheduler
        measurement = self.sensor.sample()
        output = self.controller.update(measurement, self.period)
        self.actuator.apply(output)
        self.history.append((scheduler.now(), measurement, output))
        scheduler.after(self.period, self._tick)
