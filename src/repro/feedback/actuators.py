"""Actuators: applying control outputs to pipeline components.

Actuation goes through the event service, not through direct method calls:
the actuated component's handler then runs in its own thread with the
synchronized-object guarantees of section 3.2, and a loop spanning nodes
pays the control-channel latency automatically.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.component import Component
from repro.core.events import Event, EventService


class Actuator:
    """Base class: ``apply(signal)`` pushes the control output out."""

    def bind(self, events: EventService) -> None:
        self._events = events

    def apply(self, signal: float) -> None:
        raise NotImplementedError


class EventActuator(Actuator):
    """Sends an event carrying the (transformed) signal to one component."""

    def __init__(
        self,
        target: Component,
        kind: str,
        transform: Callable[[float], Any] | None = None,
        only_on_change: bool = True,
    ):
        self.target = target
        self.kind = kind
        self.transform = transform or (lambda s: s)
        self.only_on_change = only_on_change
        self._last_payload: Any = object()
        self._events: EventService | None = None
        #: Actuations actually sent (after change suppression).
        self.applied: list[Any] = []

    def apply(self, signal: float) -> None:
        if self._events is None:
            raise RuntimeError("actuator not bound to an event service")
        payload = self.transform(signal)
        if self.only_on_change and payload == self._last_payload:
            return
        self._last_payload = payload
        self.applied.append(payload)
        self._events.send_to(
            self.target.name,
            Event(kind=self.kind, payload=payload, source="feedback"),
        )


class DropLevelActuator(EventActuator):
    """Sets the drop level of a dropping filter (Figure 1: "The dropping is
    controlled by a feedback mechanism using a sensor on the consumer
    side")."""

    def __init__(self, drop_filter: Component):
        super().__init__(
            drop_filter, kind="set-drop-level", transform=lambda s: int(round(s))
        )


class PumpRateActuator(EventActuator):
    """Adjusts a FeedbackPump's rate — e.g. compensating for clock drift on
    the producer node of a distributed pipeline (section 3.1)."""

    def __init__(self, pump: Component):
        super().__init__(pump, kind="set-rate", transform=float)
