"""Actuators: applying control outputs to pipeline components.

Actuation goes through the event service, not through direct method calls:
the actuated component's handler then runs in its own thread with the
synchronized-object guarantees of section 3.2, and a loop spanning nodes
pays the control-channel latency automatically.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.component import Component
from repro.core.events import Event, EventService


class Actuator:
    """Base class: ``apply(signal)`` pushes the control output out."""

    def bind(self, events: EventService) -> None:
        self._events = events

    def apply(self, signal: float) -> None:
        raise NotImplementedError


class EventActuator(Actuator):
    """Sends an event carrying the (transformed) signal to one component."""

    def __init__(
        self,
        target: Component,
        kind: str,
        transform: Callable[[float], Any] | None = None,
        only_on_change: bool = True,
    ):
        self.target = target
        self.kind = kind
        self.transform = transform or (lambda s: s)
        self.only_on_change = only_on_change
        self._last_payload: Any = object()
        self._events: EventService | None = None
        #: Actuations actually sent (after change suppression).
        self.applied: list[Any] = []

    def apply(self, signal: float) -> None:
        if self._events is None:
            raise RuntimeError("actuator not bound to an event service")
        payload = self.transform(signal)
        if self.only_on_change and payload == self._last_payload:
            return
        self._last_payload = payload
        self.applied.append(payload)
        self._events.send_to(
            self.target.name,
            Event(kind=self.kind, payload=payload, source="feedback"),
        )


class DropLevelActuator(EventActuator):
    """Sets the drop level of a dropping filter (Figure 1: "The dropping is
    controlled by a feedback mechanism using a sensor on the consumer
    side")."""

    def __init__(self, drop_filter: Component):
        super().__init__(
            drop_filter, kind="set-drop-level", transform=lambda s: int(round(s))
        )


class PumpRateActuator(EventActuator):
    """Adjusts a FeedbackPump's rate — e.g. compensating for clock drift on
    the producer node of a distributed pipeline (section 3.1)."""

    def __init__(self, pump: Component):
        super().__init__(pump, kind="set-rate", transform=float)


class BatchSizeActuator(Actuator):
    """Steers a :class:`repro.runtime.batching.BatchPolicy` between its
    ``min_batch`` and ``batch_max`` bounds from a 0..1 control signal
    (typically a smoothed buffer fill fraction: a filling buffer means the
    consumer lags, so larger batches amortize more per-item overhead).

    Unlike the event actuators this one adjusts the policy directly: the
    batch size is read by pump drivers at the start of each cycle, so a
    plain attribute write is race-free under the cooperative scheduler and
    needs no control message.
    """

    def __init__(self, policy):
        self.policy = policy
        #: Applied batch sizes (after clamping), for tests/telemetry.
        self.applied: list[int] = []

    def apply(self, signal: float) -> None:
        policy = self.policy
        fraction = max(0.0, min(1.0, signal))
        span = policy.batch_max - policy.min_batch
        size = policy.min_batch + int(round(fraction * span))
        policy.set_current(size)
        self.applied.append(policy.current)
