"""Controllers: turning measurements into actuation signals."""

from __future__ import annotations


class Controller:
    """Base class: ``update(measurement, dt)`` returns the control output."""

    def update(self, measurement: float, dt: float) -> float:
        raise NotImplementedError


class EwmaSmoother(Controller):
    """Exponentially-weighted moving average — a smoothing pre-stage.

    ``update`` returns the smoothed measurement; compose it in front of a
    decision controller to de-noise jittery signals.
    """

    def __init__(self, alpha: float = 0.3, initial: float = 0.0):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value = initial
        self._primed = False

    def update(self, measurement: float, dt: float) -> float:
        if not self._primed:
            self.value = measurement
            self._primed = True
        else:
            self.value += self.alpha * (measurement - self.value)
        return self.value


class StepController(Controller):
    """Hysteresis step controller over a discrete level (0..max_level).

    Raises the level while the measurement exceeds ``high``; lowers it once
    the measurement falls below ``low``.  The gap between the thresholds
    prevents oscillation.  This drives the Figure-1 dropping filter: level
    up when loss is observed, level down when the path is clean.
    """

    def __init__(
        self,
        high: float,
        low: float,
        max_level: int = 3,
        initial_level: int = 0,
    ):
        if low > high:
            raise ValueError("low threshold must not exceed high threshold")
        self.high = high
        self.low = low
        self.max_level = max_level
        self.level = initial_level

    def update(self, measurement: float, dt: float) -> float:
        if measurement > self.high and self.level < self.max_level:
            self.level += 1
        elif measurement < self.low and self.level > 0:
            self.level -= 1
        return float(self.level)


class PidController(Controller):
    """Classic PID around a setpoint (used e.g. to hold a buffer half full
    by adjusting the producer pump's rate)."""

    def __init__(
        self,
        setpoint: float,
        kp: float = 1.0,
        ki: float = 0.0,
        kd: float = 0.0,
        output_min: float | None = None,
        output_max: float | None = None,
        bias: float = 0.0,
    ):
        self.setpoint = setpoint
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.output_min = output_min
        self.output_max = output_max
        self.bias = bias
        self._integral = 0.0
        self._previous_error: float | None = None

    def update(self, measurement: float, dt: float) -> float:
        error = self.setpoint - measurement
        self._integral += error * dt
        derivative = 0.0
        if self._previous_error is not None and dt > 0:
            derivative = (error - self._previous_error) / dt
        self._previous_error = error
        output = (
            self.bias
            + self.kp * error
            + self.ki * self._integral
            + self.kd * derivative
        )
        if self.output_max is not None and output > self.output_max:
            output = self.output_max
            self._integral -= error * dt  # anti-windup
        if self.output_min is not None and output < self.output_min:
            output = self.output_min
            self._integral -= error * dt
        return output
