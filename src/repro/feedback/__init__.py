"""Feedback toolkit (paper sections 2.1 and 3.1, refs [7, 27]).

"The framework provides ... a feedback toolkit for adaptation control."  A
feedback loop samples a *sensor*, feeds the measurement to a *controller*,
and applies the controller's output through an *actuator*.  Actuation
travels as control events through the middleware, so a loop spanning nodes
(the Figure-1 consumer-side sensor driving the producer-side dropping
filter) automatically pays the network's control latency.
"""

from repro.feedback.actuators import (
    Actuator,
    DropLevelActuator,
    EventActuator,
    PumpRateActuator,
)
from repro.feedback.controllers import (
    Controller,
    EwmaSmoother,
    PidController,
    StepController,
)
from repro.feedback.loop import FeedbackLoop
from repro.feedback.sensors import (
    BufferFillSensor,
    CallbackSensor,
    LossSensor,
    MetricSensor,
    RateSensor,
    Sensor,
    SloBurnSensor,
)

__all__ = [
    "Actuator",
    "BufferFillSensor",
    "CallbackSensor",
    "Controller",
    "DropLevelActuator",
    "EventActuator",
    "EwmaSmoother",
    "FeedbackLoop",
    "LossSensor",
    "MetricSensor",
    "PidController",
    "PumpRateActuator",
    "RateSensor",
    "Sensor",
    "SloBurnSensor",
    "StepController",
]
