"""Infopipes — thread-transparent information-flow middleware.

A from-scratch Python reproduction of *Thread Transparency in Information
Flow Middleware* (Koster, Black, Huang, Walpole, Pu; Middleware 2001).

Quickstart (the paper's video player, section 4)::

    from repro import ClockedPump, run_pipeline
    from repro.media import MpegFileSource, MpegDecoder, VideoDisplay

    source = MpegFileSource("test.mpg", frames=300)
    decode = MpegDecoder()
    pump = ClockedPump(30)  # 30 Hz
    sink = VideoDisplay()
    player = source >> decode >> pump >> sink
    run_pipeline(player)

Composition is checked dynamically: incompatible components make ``>>``
raise :class:`~repro.errors.CompositionError`.  Threads, coroutines and all
synchronization are allocated and managed by the middleware
(:mod:`repro.core.glue`, :mod:`repro.runtime`); components may be written
as active objects, passive consumers, passive producers or conversion
functions and are reusable in any position.
"""

from repro.components import (
    ActiveDefragmenter,
    ActiveFragmenter,
    ActiveSink,
    ActiveSource,
    ActivityRouter,
    Buffer,
    CallbackSink,
    CallbackSource,
    ClockedPump,
    CollectSink,
    CostFilter,
    CountingSource,
    FeedbackPump,
    Gate,
    GreedyPump,
    IterSource,
    MapFilter,
    MergeTee,
    MulticastTee,
    NullSink,
    OnEmpty,
    OnFull,
    PredicateFilter,
    PullBatcher,
    PullUnbatcher,
    Pump,
    PushBatcher,
    PushUnbatcher,
    PushDefragmenter,
    PushFragmenter,
    PullDefragmenter,
    PullFragmenter,
    RoutingSwitch,
    SequenceStamp,
    Sink,
    Source,
    ZipBuffer,
)
from repro.core import (
    ANY,
    ActiveComponent,
    Choices,
    Component,
    Consumer,
    EOS,
    EndOfStream,
    Event,
    EventScope,
    FunctionComponent,
    Interval,
    Mode,
    NIL,
    Pipeline,
    Polarity,
    Producer,
    Typespec,
    allocate,
    connect,
    is_eos,
    is_nil,
    pipeline,
    props,
)
from repro.errors import (
    AllocationError,
    CompositionError,
    InfopipeError,
    PolarityError,
    RuntimeFault,
    TypespecMismatch,
)
from repro.runtime import (
    BatchPolicy,
    Engine,
    PipelineStats,
    attach_adaptive_batching,
    run_pipeline,
)
from repro import api
from repro.deploy import Deployment, DeploymentResult, Placement, deploy

__version__ = "0.2.0"

__all__ = [
    "ANY",
    "ActiveComponent",
    "ActiveDefragmenter",
    "ActiveFragmenter",
    "ActiveSink",
    "ActiveSource",
    "ActivityRouter",
    "AllocationError",
    "BatchPolicy",
    "Buffer",
    "CallbackSink",
    "CallbackSource",
    "Choices",
    "ClockedPump",
    "CollectSink",
    "Component",
    "CompositionError",
    "Consumer",
    "CostFilter",
    "CountingSource",
    "EOS",
    "EndOfStream",
    "Engine",
    "Event",
    "EventScope",
    "FeedbackPump",
    "FunctionComponent",
    "Gate",
    "GreedyPump",
    "InfopipeError",
    "Interval",
    "IterSource",
    "MapFilter",
    "MergeTee",
    "Mode",
    "MulticastTee",
    "NIL",
    "NullSink",
    "OnEmpty",
    "OnFull",
    "Pipeline",
    "PipelineStats",
    "Polarity",
    "PolarityError",
    "PredicateFilter",
    "Producer",
    "PullBatcher",
    "PullUnbatcher",
    "Pump",
    "PushBatcher",
    "PushUnbatcher",
    "PushDefragmenter",
    "PushFragmenter",
    "PullDefragmenter",
    "PullFragmenter",
    "RoutingSwitch",
    "RuntimeFault",
    "SequenceStamp",
    "Sink",
    "Source",
    "Typespec",
    "TypespecMismatch",
    "ZipBuffer",
    "Deployment",
    "DeploymentResult",
    "Placement",
    "allocate",
    "api",
    "attach_adaptive_batching",
    "connect",
    "deploy",
    "is_eos",
    "is_nil",
    "pipeline",
    "props",
    "run_pipeline",
]
