"""Group-of-pictures structure for the synthetic MPEG model."""

from __future__ import annotations

import random

from repro.media.frames import VideoFrame

#: Typical relative sizes of MPEG frame kinds, bytes at 640x480.
DEFAULT_SIZES = {"I": 12_000, "P": 5_000, "B": 2_000}


class GopStructure:
    """Generates frames following a repeating GOP pattern.

    ``pattern`` is a string over {I, P, B} starting with I, e.g. the
    classic ``"IBBPBBPBB"``.  Frame sizes vary deterministically (seeded
    RNG) around the nominal size per kind.  Dependencies are modelled as:
    I frames are self-contained; P and B frames reference the most recent
    preceding I/P frame.
    """

    def __init__(
        self,
        pattern: str = "IBBPBBPBB",
        fps: float = 30.0,
        sizes: dict[str, int] | None = None,
        size_variation: float = 0.25,
        width: int = 640,
        height: int = 480,
        seed: int = 1234,
    ):
        if not pattern or pattern[0] != "I":
            raise ValueError("GOP pattern must start with an I frame")
        if any(k not in "IPB" for k in pattern):
            raise ValueError(f"invalid GOP pattern {pattern!r}")
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.pattern = pattern
        self.fps = float(fps)
        self.sizes = dict(sizes or DEFAULT_SIZES)
        self.size_variation = size_variation
        self.width = width
        self.height = height
        self._rng = random.Random(seed)
        self._last_reference: int | None = None

    def kind_of(self, seq: int) -> str:
        return self.pattern[seq % len(self.pattern)]

    def frame(self, seq: int) -> VideoFrame:
        """Build the encoded frame with sequence number ``seq``.

        Frames must be requested in increasing order for dependency
        tracking to be meaningful (as a file source does).
        """
        kind = self.kind_of(seq)
        nominal = self.sizes[kind]
        scale = (self.width * self.height) / (640 * 480)
        jittered = nominal * scale * (
            1.0 + self.size_variation * (2.0 * self._rng.random() - 1.0)
        )
        if kind == "I":
            deps: tuple[int, ...] = ()
        else:
            deps = (self._last_reference,) if self._last_reference is not None else ()
        frame = VideoFrame(
            seq=seq,
            kind=kind,
            pts=seq / self.fps,
            size=max(64, int(jittered)),
            width=self.width,
            height=self.height,
            gop_id=seq // len(self.pattern),
            deps=deps,
        )
        if kind in ("I", "P"):
            self._last_reference = seq
        return frame

    def frames(self, count: int):
        """Generate ``count`` frames in order."""
        for seq in range(count):
            yield self.frame(seq)

    def frame_batch(
        self, start_seq: int, count: int, payloads: bool = False
    ) -> "FrameBatch":
        """Build frames ``start_seq .. start_seq+count-1`` as ONE columnar
        batch — no per-frame dataclasses.

        Column values (including the per-frame RNG draw order and the
        reference-dependency tracking) are byte-identical to ``count``
        sequential :meth:`frame` calls, so per-item and columnar pipelines
        see the same stream.  With ``payloads=True`` one contiguous region
        is filled with each frame's synthetic payload.
        """
        from repro.media import arrays
        from repro.media.batch import FrameBatch, build_payload_region

        pattern = self.pattern
        plen = len(pattern)
        sizes_by_kind = self.sizes
        scale = (self.width * self.height) / (640 * 480)
        variation = self.size_variation
        rng = self._rng.random
        fps = self.fps
        seqs, kinds, ptss, sizes, gops, deps = [], [], [], [], [], []
        for seq in range(start_seq, start_seq + count):
            kind = pattern[seq % plen]
            jittered = sizes_by_kind[kind] * scale * (
                1.0 + variation * (2.0 * rng() - 1.0)
            )
            if kind == "I":
                frame_deps: tuple[int, ...] = ()
            else:
                frame_deps = (
                    (self._last_reference,)
                    if self._last_reference is not None
                    else ()
                )
            seqs.append(seq)
            kinds.append(kind)
            ptss.append(seq / fps)
            sizes.append(max(64, int(jittered)))
            gops.append(seq // plen)
            deps.append(frame_deps)
            if kind in ("I", "P"):
                self._last_reference = seq
        region = offsets = None
        if payloads:
            region, offsets = build_payload_region(seqs, sizes)
        return FrameBatch(
            seq=arrays.i64(seqs),
            kind="".join(kinds),
            pts=arrays.f64(ptss),
            size=arrays.i64(sizes),
            width=arrays.i64([self.width] * count),
            height=arrays.i64([self.height] * count),
            gop_id=arrays.i64(gops),
            encoded=arrays.u8([1] * count),
            deps=tuple(deps),
            region=region,
            offsets=offsets,
        )

    def average_frame_size(self) -> float:
        scale = (self.width * self.height) / (640 * 480)
        total = sum(self.sizes[k] * scale for k in self.pattern)
        return total / len(self.pattern)

    def bitrate(self) -> float:
        """Nominal bits per second of the encoded flow."""
        return self.average_frame_size() * 8.0 * self.fps
