"""Columnar media batches: FrameBatch and SampleBatch.

The §2.2 argument — media pipelines pass frames *by reference* because
copying payloads dominates — applied to the batched data plane: a run of
media items is ONE object holding parallel arrays (seq/pts/kind/size/...)
plus a single contiguous buffer-protocol payload region, instead of a list
of per-item dataclasses.  numpy backs the columns when installed (the
``repro[media]`` extra); the stdlib ``array`` module otherwise — see
:mod:`repro.media.arrays`.

A batch satisfies the :class:`~repro.core.runs.ColumnarRun` contract, so
it flows through every batch walker unchanged: vectorized components
(codec, dropper, resizer, mixer, marshal) transform whole columns, while
non-vectorized components transparently materialize per-item
``VideoFrame``/``AudioSample`` objects on demand.

Payload storage is one of:

* a shared **region** + per-item offsets (lengths are the ``size``
  column) — what sources and vectorized converters build;
* a list of per-item **views** (``memoryview`` slices into a received
  netpipe frame, or borrowed from per-item payloads by
  :meth:`FrameBatch.from_frames`) — zero-copy on the receive path;
* nothing (metadata-only flows, exactly as before payloads existed).

Wire format: each batch type registers a *run codec* with
:mod:`repro.net.marshal` — encoding writes fixed headers + payload bytes
straight into one preallocated frame buffer, decoding hands back payload
``memoryview`` slices into the received buffer (zero payload copies).
Metadata-only frames are padded to their nominal ``size`` on the wire, so
the simulated network sees the same bandwidth demand as the per-item TLV
format.
"""

from __future__ import annotations

import struct
from typing import Any, Iterable, Sequence

from repro.core.runs import ColumnarRun
from repro.errors import MarshalError
from repro.media import arrays
from repro.media.frames import AudioSample, VideoFrame, synth_payload
from repro.net.marshal import EncodedRun, alloc_run_buffer, register_run_codec

#: Raw chunk wire ids (first byte; disjoint from the TLV tag space).
FRAME_WIRE_ID = 0x20
SAMPLE_WIRE_ID = 0x21

_F_HAS_PAYLOAD = 0x01
_F_ENCODED = 0x02

# wire_id, flags, kind, ndeps, seq, pts, size, body_len, width, height, gop_id
_VF_HEAD = struct.Struct("<BBBBqdqqiii")
# wire_id, flags, seq, pts, duration, size, body_len
_AS_HEAD = struct.Struct("<BBqddqq")


class _ColumnarBatch(ColumnarRun):
    """Shared payload-region/views plumbing for the two batch types."""

    __slots__ = ("size", "region", "offsets", "views", "_region_mv")

    def _init_payload(self, region, offsets, views) -> None:
        self.region = region
        self.offsets = offsets
        self.views = views
        self._region_mv = (
            arrays.region_view(region) if region is not None else None
        )

    @property
    def has_payload(self) -> bool:
        return self.region is not None or self.views is not None

    def payload_view(self, i: int):
        """Zero-copy view of item ``i``'s payload (None when absent)."""
        views = self.views
        if views is not None:
            return views[i]
        mv = self._region_mv
        if mv is None:
            return None
        offset = int(self.offsets[i])
        return mv[offset : offset + int(self.size[i])]

    def _payload_take(self, indices: Sequence[int]):
        """Payload storage for a sub-batch of ``indices`` — always shares
        the underlying bytes (region + re-indexed offsets, or a view
        sub-list); never copies payload data."""
        if self.views is not None:
            return None, None, [self.views[i] for i in indices]
        if self.region is not None:
            return self.region, arrays.take(self.offsets, indices), None
        return None, None, None

    @property
    def payload_nbytes(self) -> int:
        """Total payload bytes actually carried (0 for metadata-only)."""
        if self.views is not None:
            return sum(v.nbytes for v in self.views if v is not None)
        if self.region is not None:
            return arrays.col_sum(self.size)
        return 0

    @property
    def nominal_bytes(self) -> int:
        """Sum of the nominal ``size`` column (defined even without
        payloads — what the bytes accounting counts)."""
        return arrays.col_sum(self.size)


class FrameBatch(_ColumnarBatch):
    """A columnar run of video frames."""

    __slots__ = (
        "seq", "kind", "pts", "width", "height", "gop_id", "encoded",
        "deps", "owner",
    )

    def __init__(
        self,
        seq,
        kind: str,
        pts,
        size,
        width,
        height,
        gop_id,
        encoded,
        deps: tuple,
        owner: tuple | None = None,
        region=None,
        offsets=None,
        views=None,
    ):
        self.seq = seq
        self.kind = kind
        self.pts = pts
        self.size = size
        self.width = width
        self.height = height
        self.gop_id = gop_id
        self.encoded = encoded
        self.deps = deps
        self.owner = owner
        self._init_payload(region, offsets, views)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_frames(cls, frames: Iterable[VideoFrame]) -> "FrameBatch":
        """Build a batch from per-item frames.

        Payloads are *borrowed* (per-item views), not copied; frames
        without payload stay payload-less in the batch.
        """
        frames = list(frames)
        kind = "".join(f.kind for f in frames)
        views: list | None = [
            memoryview(f.payload) if f.payload is not None else None
            for f in frames
        ]
        if not any(v is not None for v in views):
            views = None
        owner: tuple | None = tuple(f.owner for f in frames)
        if not any(owner):
            owner = None
        return cls(
            seq=arrays.i64([f.seq for f in frames]),
            kind=kind,
            pts=arrays.f64([f.pts for f in frames]),
            size=arrays.i64([f.size for f in frames]),
            width=arrays.i64([f.width for f in frames]),
            height=arrays.i64([f.height for f in frames]),
            gop_id=arrays.i64([f.gop_id for f in frames]),
            encoded=arrays.u8([1 if f.encoded else 0 for f in frames]),
            deps=tuple(tuple(f.deps) for f in frames),
            owner=owner,
            views=views,
        )

    # -- run protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.kind)

    def frame(self, i: int) -> VideoFrame:
        """Materialize frame ``i`` (payload stays a zero-copy view)."""
        return VideoFrame(
            seq=int(self.seq[i]),
            kind=self.kind[i],
            pts=float(self.pts[i]),
            size=int(self.size[i]),
            width=int(self.width[i]),
            height=int(self.height[i]),
            gop_id=int(self.gop_id[i]),
            encoded=bool(self.encoded[i]),
            deps=self.deps[i],
            owner=self.owner[i] if self.owner is not None else "",
            payload=self.payload_view(i),
        )

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.select(range(len(self))[index])
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        return self.frame(index)

    def to_frames(self) -> list[VideoFrame]:
        return [self.frame(i) for i in range(len(self))]

    def select(self, indices: Iterable[int]) -> "FrameBatch":
        """Sub-batch of ``indices`` — columns re-indexed, payload bytes
        shared with this batch (zero copy)."""
        indices = list(indices)
        region, offsets, views = self._payload_take(indices)
        return FrameBatch(
            seq=arrays.take(self.seq, indices),
            kind="".join(self.kind[i] for i in indices),
            pts=arrays.take(self.pts, indices),
            size=arrays.take(self.size, indices),
            width=arrays.take(self.width, indices),
            height=arrays.take(self.height, indices),
            gop_id=arrays.take(self.gop_id, indices),
            encoded=arrays.take(self.encoded, indices),
            deps=tuple(self.deps[i] for i in indices),
            owner=(
                tuple(self.owner[i] for i in indices)
                if self.owner is not None
                else None
            ),
            region=region,
            offsets=offsets,
            views=views,
        )


class SampleBatch(_ColumnarBatch):
    """A columnar run of audio sample blocks."""

    __slots__ = ("seq", "pts", "duration")

    def __init__(self, seq, pts, duration, size,
                 region=None, offsets=None, views=None):
        self.seq = seq
        self.pts = pts
        self.duration = duration
        self.size = size
        self._init_payload(region, offsets, views)

    @classmethod
    def from_samples(cls, samples: Iterable[AudioSample]) -> "SampleBatch":
        samples = list(samples)
        views: list | None = [
            memoryview(s.payload) if s.payload is not None else None
            for s in samples
        ]
        if not any(v is not None for v in views):
            views = None
        return cls(
            seq=arrays.i64([s.seq for s in samples]),
            pts=arrays.f64([s.pts for s in samples]),
            duration=arrays.f64([s.duration for s in samples]),
            size=arrays.i64([s.size for s in samples]),
            views=views,
        )

    def __len__(self) -> int:
        return len(self.seq)

    def sample(self, i: int) -> AudioSample:
        return AudioSample(
            seq=int(self.seq[i]),
            pts=float(self.pts[i]),
            duration=float(self.duration[i]),
            size=int(self.size[i]),
            payload=self.payload_view(i),
        )

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.select(range(len(self))[index])
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        return self.sample(index)

    def to_samples(self) -> list[AudioSample]:
        return [self.sample(i) for i in range(len(self))]

    def select(self, indices: Iterable[int]) -> "SampleBatch":
        indices = list(indices)
        region, offsets, views = self._payload_take(indices)
        return SampleBatch(
            seq=arrays.take(self.seq, indices),
            pts=arrays.take(self.pts, indices),
            duration=arrays.take(self.duration, indices),
            size=arrays.take(self.size, indices),
            region=region,
            offsets=offsets,
            views=views,
        )


def build_payload_region(seqs: Sequence[int], sizes: Sequence[int]):
    """One contiguous region filled with each item's synthetic payload.

    Returns ``(region, offsets)`` for batch construction.  The fill is a
    C-level pattern copy per item, byte-identical to the per-item
    :func:`~repro.media.frames.synth_payload`.
    """
    total = 0
    offsets = []
    for size in sizes:
        offsets.append(total)
        total += int(size)
    region = arrays.payload_region(total)
    mv = arrays.region_view(region)
    for seq, offset, size in zip(seqs, offsets, sizes):
        size = int(size)
        if size:
            mv[offset : offset + size] = synth_payload(int(seq), size)
    return region, arrays.i64(offsets)


# -- wire run codecs -----------------------------------------------------------


def _encode_frame_run(batch: FrameBatch) -> EncodedRun:
    n = len(batch)
    head = _VF_HEAD.size
    deps = batch.deps
    sizes = batch.size
    payloads = [batch.payload_view(i) for i in range(n)]
    lengths = []
    for i in range(n):
        body = (
            payloads[i].nbytes
            if payloads[i] is not None
            else max(0, int(sizes[i]) - head - 8 * len(deps[i]))
        )
        lengths.append(head + 8 * len(deps[i]) + body)
    buffer, offsets = alloc_run_buffer(lengths)
    pack = _VF_HEAD.pack_into
    seq, kind, pts = batch.seq, batch.kind, batch.pts
    width, height = batch.width, batch.height
    gop_id, encoded = batch.gop_id, batch.encoded
    for i in range(n):
        offset = offsets[i]
        payload = payloads[i]
        frame_deps = deps[i]
        ndeps = len(frame_deps)
        body = lengths[i] - head - 8 * ndeps
        flags = (_F_HAS_PAYLOAD if payload is not None else 0) | (
            _F_ENCODED if encoded[i] else 0
        )
        pack(
            buffer, offset,
            FRAME_WIRE_ID, flags, ord(kind[i]), ndeps,
            int(seq[i]), float(pts[i]), int(sizes[i]), body,
            int(width[i]), int(height[i]), int(gop_id[i]),
        )
        offset += head
        if ndeps:
            struct.pack_into(f"<{ndeps}q", buffer, offset, *frame_deps)
            offset += 8 * ndeps
        if payload is not None:
            buffer[offset : offset + payload.nbytes] = payload
        # else: the pad bytes are already zero in the fresh buffer.
    return EncodedRun(buffer, offsets, lengths)


def _parse_frame_chunk(chunk):
    mv = chunk if isinstance(chunk, memoryview) else memoryview(chunk)
    head = _VF_HEAD.size
    if mv.nbytes < head:
        raise MarshalError(
            f"truncated frame chunk: {mv.nbytes} of {head} header bytes"
        )
    (
        _wire, flags, kind_code, ndeps,
        seq, pts, size, body, width, height, gop_id,
    ) = _VF_HEAD.unpack_from(mv, 0)
    expected = head + 8 * ndeps + body
    if mv.nbytes != expected:
        raise MarshalError(
            f"malformed frame chunk: {mv.nbytes} bytes, expected {expected}"
        )
    offset = head
    deps = struct.unpack_from(f"<{ndeps}q", mv, offset) if ndeps else ()
    offset += 8 * ndeps
    payload = mv[offset : offset + body] if flags & _F_HAS_PAYLOAD else None
    return (
        seq, chr(kind_code), pts, size, width, height, gop_id,
        bool(flags & _F_ENCODED), deps, payload,
    )


def _decode_frame_run(chunks: list) -> FrameBatch:
    seqs, kinds, ptss, sizes = [], [], [], []
    widths, heights, gops, encs, deps, views = [], [], [], [], [], []
    any_payload = False
    for chunk in chunks:
        (seq, kind, pts, size, width, height, gop_id,
         encoded, frame_deps, payload) = _parse_frame_chunk(chunk)
        seqs.append(seq)
        kinds.append(kind)
        ptss.append(pts)
        sizes.append(size)
        widths.append(width)
        heights.append(height)
        gops.append(gop_id)
        encs.append(1 if encoded else 0)
        deps.append(frame_deps)
        views.append(payload)
        any_payload = any_payload or payload is not None
    return FrameBatch(
        seq=arrays.i64(seqs),
        kind="".join(kinds),
        pts=arrays.f64(ptss),
        size=arrays.i64(sizes),
        width=arrays.i64(widths),
        height=arrays.i64(heights),
        gop_id=arrays.i64(gops),
        encoded=arrays.u8(encs),
        deps=tuple(deps),
        views=views if any_payload else None,
    )


def _decode_frame_one(chunk) -> VideoFrame:
    (seq, kind, pts, size, width, height, gop_id,
     encoded, deps, payload) = _parse_frame_chunk(chunk)
    return VideoFrame(
        seq=seq, kind=kind, pts=pts, size=size, width=width, height=height,
        gop_id=gop_id, encoded=encoded, deps=deps, payload=payload,
    )


def _encode_sample_run(batch: SampleBatch) -> EncodedRun:
    n = len(batch)
    head = _AS_HEAD.size
    payloads = [batch.payload_view(i) for i in range(n)]
    lengths = [
        head + (payloads[i].nbytes if payloads[i] is not None else 0)
        for i in range(n)
    ]
    buffer, offsets = alloc_run_buffer(lengths)
    pack = _AS_HEAD.pack_into
    seq, pts, duration, sizes = batch.seq, batch.pts, batch.duration, batch.size
    for i in range(n):
        offset = offsets[i]
        payload = payloads[i]
        body = lengths[i] - head
        flags = _F_HAS_PAYLOAD if payload is not None else 0
        pack(
            buffer, offset,
            SAMPLE_WIRE_ID, flags,
            int(seq[i]), float(pts[i]), float(duration[i]),
            int(sizes[i]), body,
        )
        if payload is not None:
            offset += head
            buffer[offset : offset + payload.nbytes] = payload
    return EncodedRun(buffer, offsets, lengths)


def _parse_sample_chunk(chunk):
    mv = chunk if isinstance(chunk, memoryview) else memoryview(chunk)
    head = _AS_HEAD.size
    if mv.nbytes < head:
        raise MarshalError(
            f"truncated sample chunk: {mv.nbytes} of {head} header bytes"
        )
    _wire, flags, seq, pts, duration, size, body = _AS_HEAD.unpack_from(mv, 0)
    if mv.nbytes != head + body:
        raise MarshalError(
            f"malformed sample chunk: {mv.nbytes} bytes, "
            f"expected {head + body}"
        )
    payload = mv[head : head + body] if flags & _F_HAS_PAYLOAD else None
    return seq, pts, duration, size, payload


def _decode_sample_run(chunks: list) -> SampleBatch:
    seqs, ptss, durations, sizes, views = [], [], [], [], []
    any_payload = False
    for chunk in chunks:
        seq, pts, duration, size, payload = _parse_sample_chunk(chunk)
        seqs.append(seq)
        ptss.append(pts)
        durations.append(duration)
        sizes.append(size)
        views.append(payload)
        any_payload = any_payload or payload is not None
    return SampleBatch(
        seq=arrays.i64(seqs),
        pts=arrays.f64(ptss),
        duration=arrays.f64(durations),
        size=arrays.i64(sizes),
        views=views if any_payload else None,
    )


def _decode_sample_one(chunk) -> AudioSample:
    seq, pts, duration, size, payload = _parse_sample_chunk(chunk)
    return AudioSample(seq=seq, pts=pts, duration=duration, size=size,
                       payload=payload)


register_run_codec(
    FrameBatch, FRAME_WIRE_ID,
    _encode_frame_run, _decode_frame_run, _decode_frame_one,
)
register_run_codec(
    SampleBatch, SAMPLE_WIRE_ID,
    _encode_sample_run, _decode_sample_run, _decode_sample_one,
)

__all__ = [
    "FrameBatch",
    "SampleBatch",
    "build_payload_region",
    "FRAME_WIRE_ID",
    "SAMPLE_WIRE_ID",
]
