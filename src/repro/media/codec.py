"""The synthetic MPEG codec.

The decoder models the three behaviours the paper's arguments rest on:

* **decode cost** — CPU time proportional to frame size, charged to the
  scheduler, so video decoding is the long-running preemptible work of
  section 3.2;
* **reference-frame sharing** — "an MPEG-decoder that passes on decoded
  video frames and at the same time still needs them as reference frames
  itself.  Communication between the decoder and downstream components
  must determine when the shared frames can be deleted" (section 2.2):
  decoded I/P frames stay in the decoder's reference store until the
  consumer sends a ``frame-release`` control event;
* **loss sensitivity** — P/B frames whose references were lost upstream
  are undecodable and skipped, which is why feedback-controlled dropping
  (B first) beats arbitrary network dropping at equal loss rates.
"""

from __future__ import annotations

from repro.core.styles import Consumer
from repro.core.typespec import Typespec, props
from repro.media import arrays
from repro.media.batch import FrameBatch, build_payload_region
from repro.media.frames import VideoFrame, synth_payload


class MpegDecoder(Consumer):
    """Decoder: encoded frames in, decoded (shared) frames out."""

    input_spec = Typespec({props.ITEM_TYPE: "video-frame",
                           props.FORMAT: "mpeg"})
    output_props = {props.FORMAT: "raw"}
    events_handled = frozenset({"frame-release"})
    # ``skipped_undecodable`` is loss, but not via a drops/dropped* stat —
    # declare it so flow invariants and the refinement checker sanction
    # (and report) it instead of flagging undeclared loss.
    declares_drops = True
    loss_reason = "skips frames whose GOP reference frames were lost"

    def __init__(
        self,
        name: str | None = None,
        cost_per_mb: float = 0.004,
        share_references: bool = True,
    ):
        super().__init__(name)
        #: Simulated decode cost in seconds per megabyte of *decoded* data.
        self.cost_per_mb = cost_per_mb
        self.share_references = share_references
        #: Decoded reference frames still shared with downstream, by seq.
        self.reference_frames: dict[int, VideoFrame] = {}
        #: Sequence numbers of frames decoded successfully.
        self._decoded: set[int] = set()
        self.stats.update(decoded=0, skipped_undecodable=0, released=0,
                          bytes_in=0, bytes_out=0)

    # -- data path ---------------------------------------------------------

    def push(self, frame: VideoFrame) -> None:
        if not isinstance(frame, VideoFrame) or not frame.encoded:
            raise TypeError(
                f"{self.name!r} expects encoded VideoFrames, got {frame!r}"
            )
        self.stats["bytes_in"] += frame.size
        if not self._decodable(frame):
            self.stats["skipped_undecodable"] += 1
            return
        # Only reference frames (I/P) are shared with downstream; B frames
        # are not kept and need no release.
        shares = self.share_references and frame.kind in ("I", "P")
        decoded = frame.decoded_copy(owner=self.name if shares else "")
        if self.cost_per_mb:
            self.charge(self.cost_per_mb * decoded.size / 1_000_000.0)
        self._decoded.add(frame.seq)
        if frame.kind in ("I", "P") and self.share_references:
            self.reference_frames[frame.seq] = decoded
        self.stats["decoded"] += 1
        self.stats["bytes_out"] += decoded.size
        self.put(decoded)
        self._forget_stale(frame.seq)

    def process_run(self, run) -> "FrameBatch | None":
        """Vectorized entry for columnar runs.

        Declines (returns None, falling back to per-item pushes) when
        reference sharing is on — the §2.2 frame-release protocol hands
        out *owned* per-frame objects, which a columnar batch cannot
        represent — or when the run is not a batch of encoded frames.
        The decode loop walks sequences in order so within-batch
        dependencies (a P frame referencing the I frame three slots
        earlier) resolve exactly as they do per item.
        """
        if self.share_references:
            return None
        kinds = getattr(run, "kind", None)
        if not isinstance(kinds, str):
            return None
        count = len(run)
        if arrays.col_sum(run.encoded) != count:
            return None  # per-item path raises the clear type error
        stats = self.stats
        stats["items_in"] += count
        stats["bytes_in"] += run.nominal_bytes
        decoded_set = self._decoded
        deps = run.deps
        seq_col, widths, heights = run.seq, run.width, run.height
        cost = self.cost_per_mb
        keep: list[int] = []
        raw_sizes: list[int] = []
        for i in range(count):
            if not all(d in decoded_set for d in deps[i]):
                stats["skipped_undecodable"] += 1
                continue
            seq = int(seq_col[i])
            raw = int(int(widths[i]) * int(heights[i]) * 1.5)  # YUV420
            if cost:
                self.charge(cost * raw / 1_000_000.0)
            decoded_set.add(seq)
            stats["decoded"] += 1
            keep.append(i)
            raw_sizes.append(raw)
            self._forget_stale(seq)
        n = len(keep)
        region = offsets = None
        if n and run.has_payload:
            region, offsets = build_payload_region(
                [int(seq_col[i]) for i in keep], raw_sizes
            )
        out = FrameBatch(
            seq=arrays.take(seq_col, keep),
            kind="".join(kinds[i] for i in keep),
            pts=arrays.take(run.pts, keep),
            size=arrays.i64(raw_sizes),
            width=arrays.take(widths, keep),
            height=arrays.take(heights, keep),
            gop_id=arrays.take(run.gop_id, keep),
            encoded=arrays.u8([0] * n),
            deps=tuple(deps[i] for i in keep),
            region=region,
            offsets=offsets,
        )
        stats["items_out"] += n
        stats["bytes_out"] += out.nominal_bytes
        return out

    def _decodable(self, frame: VideoFrame) -> bool:
        return all(dep in self._decoded for dep in frame.deps)

    def _forget_stale(self, current_seq: int, horizon: int = 64) -> None:
        # Bound the decoded-set so infinite streams do not grow memory;
        # references older than the horizon can never be dependencies.
        stale = [s for s in self._decoded if s < current_seq - horizon]
        for seq in stale:
            self._decoded.discard(seq)

    # -- shared-frame lifecycle ----------------------------------------------

    def on_frame_release(self, event) -> None:
        """Downstream is done displaying a shared reference frame."""
        seq = event.payload
        if self.reference_frames.pop(seq, None) is not None:
            self.stats["released"] += 1

    @property
    def shared_frame_count(self) -> int:
        return len(self.reference_frames)


class MpegEncoder(Consumer):
    """Encoder: raw frames in, encoded frames out (for camera pipelines)."""

    input_spec = Typespec({props.ITEM_TYPE: "video-frame",
                           props.FORMAT: "raw"})
    output_props = {props.FORMAT: "mpeg"}

    def __init__(
        self,
        name: str | None = None,
        cost_per_mb: float = 0.008,
        compression: float = 20.0,
    ):
        super().__init__(name)
        self.cost_per_mb = cost_per_mb
        self.compression = compression
        self.stats.update(encoded=0, bytes_in=0, bytes_out=0)

    def push(self, frame: VideoFrame) -> None:
        if not isinstance(frame, VideoFrame) or frame.encoded:
            raise TypeError(
                f"{self.name!r} expects raw VideoFrames, got {frame!r}"
            )
        self.stats["bytes_in"] += frame.size
        if self.cost_per_mb:
            self.charge(self.cost_per_mb * frame.size / 1_000_000.0)
        size = max(64, int(frame.size / self.compression))
        encoded = VideoFrame(
            seq=frame.seq,
            kind=frame.kind,
            pts=frame.pts,
            size=size,
            width=frame.width,
            height=frame.height,
            gop_id=frame.gop_id,
            encoded=True,
            deps=frame.deps,
            payload=(
                synth_payload(frame.seq, size)
                if frame.payload is not None
                else None
            ),
        )
        self.stats["encoded"] += 1
        self.stats["bytes_out"] += size
        self.put(encoded)

    def process_run(self, run) -> "FrameBatch | None":
        """Vectorized entry: encode a whole raw columnar run at once."""
        kinds = getattr(run, "kind", None)
        if not isinstance(kinds, str):
            return None
        count = len(run)
        if arrays.col_sum(run.encoded) != 0:
            return None  # per-item path raises the clear type error
        stats = self.stats
        stats["items_in"] += count
        stats["bytes_in"] += run.nominal_bytes
        cost = self.cost_per_mb
        compression = self.compression
        sizes = run.size
        out_sizes: list[int] = []
        for i in range(count):
            size = int(sizes[i])
            if cost:
                self.charge(cost * size / 1_000_000.0)
            out_sizes.append(max(64, int(size / compression)))
        stats["encoded"] += count
        region = offsets = None
        if count and run.has_payload:
            region, offsets = build_payload_region(
                arrays.tolist(run.seq), out_sizes
            )
        out = FrameBatch(
            seq=run.seq,
            kind=kinds,
            pts=run.pts,
            size=arrays.i64(out_sizes),
            width=run.width,
            height=run.height,
            gop_id=run.gop_id,
            encoded=arrays.u8([1] * count),
            deps=run.deps,
            region=region,
            offsets=offsets,
        )
        stats["items_out"] += count
        stats["bytes_out"] += out.nominal_bytes
        return out
