"""The synthetic MPEG codec.

The decoder models the three behaviours the paper's arguments rest on:

* **decode cost** — CPU time proportional to frame size, charged to the
  scheduler, so video decoding is the long-running preemptible work of
  section 3.2;
* **reference-frame sharing** — "an MPEG-decoder that passes on decoded
  video frames and at the same time still needs them as reference frames
  itself.  Communication between the decoder and downstream components
  must determine when the shared frames can be deleted" (section 2.2):
  decoded I/P frames stay in the decoder's reference store until the
  consumer sends a ``frame-release`` control event;
* **loss sensitivity** — P/B frames whose references were lost upstream
  are undecodable and skipped, which is why feedback-controlled dropping
  (B first) beats arbitrary network dropping at equal loss rates.
"""

from __future__ import annotations

from repro.core.styles import Consumer
from repro.core.typespec import Typespec, props
from repro.media.frames import VideoFrame


class MpegDecoder(Consumer):
    """Decoder: encoded frames in, decoded (shared) frames out."""

    input_spec = Typespec({props.ITEM_TYPE: "video-frame",
                           props.FORMAT: "mpeg"})
    output_props = {props.FORMAT: "raw"}
    events_handled = frozenset({"frame-release"})

    def __init__(
        self,
        name: str | None = None,
        cost_per_mb: float = 0.004,
        share_references: bool = True,
    ):
        super().__init__(name)
        #: Simulated decode cost in seconds per megabyte of *decoded* data.
        self.cost_per_mb = cost_per_mb
        self.share_references = share_references
        #: Decoded reference frames still shared with downstream, by seq.
        self.reference_frames: dict[int, VideoFrame] = {}
        #: Sequence numbers of frames decoded successfully.
        self._decoded: set[int] = set()
        self.stats.update(decoded=0, skipped_undecodable=0, released=0)

    # -- data path ---------------------------------------------------------

    def push(self, frame: VideoFrame) -> None:
        if not isinstance(frame, VideoFrame) or not frame.encoded:
            raise TypeError(
                f"{self.name!r} expects encoded VideoFrames, got {frame!r}"
            )
        if not self._decodable(frame):
            self.stats["skipped_undecodable"] += 1
            return
        # Only reference frames (I/P) are shared with downstream; B frames
        # are not kept and need no release.
        shares = self.share_references and frame.kind in ("I", "P")
        decoded = frame.decoded_copy(owner=self.name if shares else "")
        if self.cost_per_mb:
            self.charge(self.cost_per_mb * decoded.size / 1_000_000.0)
        self._decoded.add(frame.seq)
        if frame.kind in ("I", "P") and self.share_references:
            self.reference_frames[frame.seq] = decoded
        self.stats["decoded"] += 1
        self.put(decoded)
        self._forget_stale(frame.seq)

    def _decodable(self, frame: VideoFrame) -> bool:
        return all(dep in self._decoded for dep in frame.deps)

    def _forget_stale(self, current_seq: int, horizon: int = 64) -> None:
        # Bound the decoded-set so infinite streams do not grow memory;
        # references older than the horizon can never be dependencies.
        stale = [s for s in self._decoded if s < current_seq - horizon]
        for seq in stale:
            self._decoded.discard(seq)

    # -- shared-frame lifecycle ----------------------------------------------

    def on_frame_release(self, event) -> None:
        """Downstream is done displaying a shared reference frame."""
        seq = event.payload
        if self.reference_frames.pop(seq, None) is not None:
            self.stats["released"] += 1

    @property
    def shared_frame_count(self) -> int:
        return len(self.reference_frames)


class MpegEncoder(Consumer):
    """Encoder: raw frames in, encoded frames out (for camera pipelines)."""

    input_spec = Typespec({props.ITEM_TYPE: "video-frame",
                           props.FORMAT: "raw"})
    output_props = {props.FORMAT: "mpeg"}

    def __init__(
        self,
        name: str | None = None,
        cost_per_mb: float = 0.008,
        compression: float = 20.0,
    ):
        super().__init__(name)
        self.cost_per_mb = cost_per_mb
        self.compression = compression
        self.stats.update(encoded=0)

    def push(self, frame: VideoFrame) -> None:
        if not isinstance(frame, VideoFrame) or frame.encoded:
            raise TypeError(
                f"{self.name!r} expects raw VideoFrames, got {frame!r}"
            )
        if self.cost_per_mb:
            self.charge(self.cost_per_mb * frame.size / 1_000_000.0)
        encoded = VideoFrame(
            seq=frame.seq,
            kind=frame.kind,
            pts=frame.pts,
            size=max(64, int(frame.size / self.compression)),
            width=frame.width,
            height=frame.height,
            gop_id=frame.gop_id,
            encoded=True,
            deps=frame.deps,
        )
        self.stats["encoded"] += 1
        self.put(encoded)
