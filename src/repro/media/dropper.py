"""The feedback-controlled priority dropping filter (Figure 1).

"The filter drops when the network is congested.  The dropping is
controlled by a feedback mechanism using a sensor on the consumer side.
This lets us control which data is dropped rather than incurring arbitrary
dropping in the network."

Drop levels:

===== ==========================================
level behaviour
===== ==========================================
0     pass everything
1     drop B frames
2     drop B and P frames
3     drop everything except I frames (same as 2
      for the standard GOP, but also drops any
      non-I kinds an exotic flow may carry)
===== ==========================================
"""

from __future__ import annotations

from repro.core.styles import Consumer
from repro.core.typespec import Typespec, props
from repro.media.frames import VideoFrame

_DROPPED_KINDS = {0: set(), 1: {"B"}, 2: {"B", "P"}}


class PriorityDropFilter(Consumer):
    """Drops low-priority frame kinds according to its drop level."""

    input_spec = Typespec({props.ITEM_TYPE: "video-frame"})
    events_handled = frozenset({"set-drop-level"})
    # Drops are exactly counted in dropped_* stats (conservation stays an
    # exact check — no ``declares_drops`` blanket waiver); the reason is
    # declared so refinement failures and lossy-channel reports name it.
    loss_reason = "sheds B/P frames per its commanded drop level"

    def __init__(self, level: int = 0, name: str | None = None):
        super().__init__(name)
        self._level = 0
        self.level = level
        self.stats.update(dropped_B=0, dropped_P=0, dropped_other=0,
                          bytes_in=0, bytes_out=0)
        #: (level, at-item-count) history of level changes.
        self.level_changes: list[tuple[int, int]] = []

    @property
    def level(self) -> int:
        return self._level

    @level.setter
    def level(self, value: int) -> None:
        self._level = max(0, min(3, int(value)))

    def on_set_drop_level(self, event) -> None:
        self.level = event.payload
        self.level_changes.append((self._level, self.stats["items_in"]))

    def push(self, frame: VideoFrame) -> None:
        self.stats["bytes_in"] += frame.size
        if self._should_drop(frame):
            key = f"dropped_{frame.kind}" if frame.kind in ("B", "P") \
                else "dropped_other"
            self.stats[key] = self.stats.get(key, 0) + 1
            return
        self.stats["bytes_out"] += frame.size
        self.put(frame)

    def _should_drop(self, frame: VideoFrame) -> bool:
        if self._level >= 3:
            return frame.kind != "I"
        return frame.kind in _DROPPED_KINDS[self._level]

    def _drops_kind(self, kind: str) -> bool:
        if self._level >= 3:
            return kind != "I"
        return kind in _DROPPED_KINDS[self._level]

    def process_run(self, run) -> "object | None":
        """Vectorized entry for columnar runs: one kind-column scan, a
        zero-copy :meth:`~repro.media.batch.FrameBatch.select` of the
        kept frames, and the same stats the per-item path counts."""
        kinds = getattr(run, "kind", None)
        if not isinstance(kinds, str):
            return None
        stats = self.stats
        count = len(run)
        stats["items_in"] += count
        stats["bytes_in"] += run.nominal_bytes
        if self._level == 0:
            stats["items_out"] += count
            stats["bytes_out"] += run.nominal_bytes
            return run
        drops_kind = self._drops_kind
        dropped = {kind for kind in set(kinds) if drops_kind(kind)}
        if not dropped:
            stats["items_out"] += count
            stats["bytes_out"] += run.nominal_bytes
            return run
        keep = [i for i, kind in enumerate(kinds) if kind not in dropped]
        for kind in kinds:
            if kind in dropped:
                key = f"dropped_{kind}" if kind in ("B", "P") \
                    else "dropped_other"
                stats[key] = stats.get(key, 0) + 1
        kept = run.select(keep)
        stats["items_out"] += len(keep)
        stats["bytes_out"] += kept.nominal_bytes
        return kept
