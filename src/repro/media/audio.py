"""Audio endpoints.

"Audio devices that have their own timing control can be implemented as a
clock-driven active sink" (section 3.1) — the :class:`AudioDevice` is
exactly that, and is the natural high-priority activity origin used in the
preemption experiments (audio must not be delayed by video decoding).
"""

from __future__ import annotations

from repro.components.sinks import ActiveSink
from repro.components.sources import Source
from repro.core.events import EOS
from repro.core.styles import FunctionComponent
from repro.core.typespec import Typespec, props
from repro.media import arrays
from repro.media.batch import SampleBatch, build_payload_region
from repro.media.frames import AudioSample, synth_payload


class AudioSource(Source):
    """Passive source of audio sample blocks."""

    flow_spec = Typespec({props.ITEM_TYPE: "audio-sample"})

    def __init__(
        self,
        blocks: int = 1000,
        block_duration: float = 0.020,
        name: str | None = None,
        payloads: bool = False,
        block_size: int = 1024,
    ):
        super().__init__(name)
        self._total = blocks
        self.block_duration = block_duration
        self._next = 0
        #: Attach synthetic int16 sample bytes to every block.
        self.payloads = payloads
        self.block_size = block_size
        self.stats.update(bytes_out=0)

    def pull(self):
        if self._next >= self._total:
            return EOS
        sample = AudioSample(
            seq=self._next,
            pts=self._next * self.block_duration,
            duration=self.block_duration,
            size=self.block_size,
        )
        if self.payloads:
            sample.payload = synth_payload(sample.seq, sample.size)
        self.stats["bytes_out"] += sample.size
        self._next += 1
        return sample

    def pull_many(self, n: int):
        """Batch pull entry (columnar fast path): up to ``n`` blocks as
        ONE SampleBatch; ``[EOS]`` once exhausted.  The block stream is
        identical to per-item :meth:`pull` calls."""
        remaining = self._total - self._next
        if remaining <= 0:
            return [EOS]
        count = n if n < remaining else remaining
        start = self._next
        seqs = list(range(start, start + count))
        size = self.block_size
        sizes = [size] * count
        region = offsets = None
        if self.payloads:
            region, offsets = build_payload_region(seqs, sizes)
        duration = self.block_duration
        batch = SampleBatch(
            seq=arrays.i64(seqs),
            pts=arrays.f64([seq * duration for seq in seqs]),
            duration=arrays.f64([duration] * count),
            size=arrays.i64(sizes),
            region=region,
            offsets=offsets,
        )
        self._next += count
        self.stats["bytes_out"] += batch.nominal_bytes
        return batch


class AudioMixer(FunctionComponent):
    """Applies a rational gain to int16 sample payloads.

    The gain is the exact fraction ``gain_num / gain_den`` applied with
    integer floor division and clamped to the int16 range, so the numpy
    and pure-Python mixing paths produce identical bytes (no float
    rounding).  Metadata-only blocks pass through untouched.  A trailing
    odd byte (payloads are not required to be sample-aligned) is copied
    verbatim.
    """

    input_spec = Typespec({props.ITEM_TYPE: "audio-sample"})
    events_handled = frozenset({"set-gain"})

    def __init__(
        self,
        gain_num: int = 1,
        gain_den: int = 1,
        cost_per_block: float = 0.0001,
        name: str | None = None,
    ):
        super().__init__(name)
        if gain_den <= 0:
            raise ValueError("gain_den must be positive")
        self.gain_num = int(gain_num)
        self.gain_den = int(gain_den)
        self.cost_per_block = cost_per_block
        self.stats.update(mixed=0, bytes_in=0, bytes_out=0)

    def on_set_gain(self, event) -> None:
        num, den = event.payload
        if den <= 0:
            raise ValueError("gain_den must be positive")
        self.gain_num, self.gain_den = int(num), int(den)

    def _mix_into(self, src: memoryview, dst: memoryview) -> None:
        """Write ``src`` scaled by the gain into ``dst`` (same length)."""
        num, den = self.gain_num, self.gain_den
        n = src.nbytes
        usable = n - (n % 2)
        np = arrays.np
        if np is not None and usable:
            samples = np.frombuffer(src[:usable], dtype=np.int16)
            scaled = (samples.astype(np.int64) * num) // den
            np.clip(scaled, -32768, 32767, out=scaled)
            dst[:usable] = scaled.astype(np.int16).tobytes()
        elif usable:
            s = src[:usable].cast("h")
            d = dst[:usable].cast("h")
            for i in range(len(s)):
                v = (s[i] * num) // den
                if v > 32767:
                    v = 32767
                elif v < -32768:
                    v = -32768
                d[i] = v
        if usable != n:
            dst[usable:] = src[usable:]

    def convert(self, sample: AudioSample) -> AudioSample:
        stats = self.stats
        stats["bytes_in"] += sample.size
        payload = sample.payload
        if payload is None:
            stats["bytes_out"] += sample.size
            return sample
        src = (
            payload
            if isinstance(payload, memoryview)
            else memoryview(payload)
        )
        out = bytearray(src.nbytes)
        self._mix_into(src, memoryview(out))
        if self.cost_per_block:
            self.charge(self.cost_per_block)
        stats["mixed"] += 1
        stats["bytes_out"] += sample.size
        return AudioSample(
            seq=sample.seq,
            pts=sample.pts,
            duration=sample.duration,
            size=sample.size,
            payload=bytes(out),
        )

    def convert_many(self, items):
        """Vectorized path: mix a whole columnar run into one fresh
        payload region (the gain math is applied per block over numpy
        arrays when available)."""
        if not isinstance(items, SampleBatch):
            return super().convert_many(items)
        count = len(items)
        stats = self.stats
        if not items.has_payload:
            stats["bytes_in"] += items.nominal_bytes
            stats["bytes_out"] += items.nominal_bytes
            return items
        sizes = [int(items.size[i]) for i in range(count)]
        payloads = [items.payload_view(i) for i in range(count)]
        if any(
            p is None or p.nbytes != sizes[i]
            for i, p in enumerate(payloads)
        ):
            return super().convert_many(items)  # per-item exact fallback
        stats["bytes_in"] += items.nominal_bytes
        offsets: list[int] = []
        total = 0
        for size in sizes:
            offsets.append(total)
            total += size
        region = arrays.payload_region(total)
        mv = arrays.region_view(region)
        cost = self.cost_per_block
        for i in range(count):
            offset = offsets[i]
            self._mix_into(payloads[i], mv[offset : offset + sizes[i]])
            if cost:
                self.charge(cost)
        stats["mixed"] += count
        out = SampleBatch(
            seq=items.seq,
            pts=items.pts,
            duration=items.duration,
            size=items.size,
            region=region,
            offsets=arrays.i64(offsets),
        )
        stats["bytes_out"] += out.nominal_bytes
        return out


class AudioDevice(ActiveSink):
    """Clock-driven active sink: its own timer pulls one block per period.

    Tracks playout gaps: if the gap between consecutive consumed blocks
    exceeds the block duration by more than half a period, an underrun is
    counted.
    """

    input_spec = Typespec({props.ITEM_TYPE: "audio-sample"})

    def __init__(
        self,
        rate_hz: float = 50.0,  # 20 ms blocks
        name: str | None = None,
        priority: int = 8,
        max_items: int | None = None,
        play_cost: float = 0.0002,
    ):
        super().__init__(rate_hz, name, priority, max_items)
        self.play_cost = play_cost
        self.consumed: list[AudioSample] = []
        self.play_times: list[float] = []
        self._engine = None
        self.stats.update(underruns=0, bytes_in=0)

    def on_attach(self, engine) -> None:
        self._engine = engine

    def consume(self, sample: AudioSample) -> None:
        self.stats["bytes_in"] += sample.size
        if self.play_cost:
            self.charge(self.play_cost)
        now = self._engine.now() if self._engine is not None else 0.0
        if self.play_times:
            gap = now - self.play_times[-1]
            period = 1.0 / self.rate_hz if self.rate_hz else 0.0
            if period and gap > period * 1.5:
                self.stats["underruns"] += 1
        self.consumed.append(sample)
        self.play_times.append(now)
