"""Audio endpoints.

"Audio devices that have their own timing control can be implemented as a
clock-driven active sink" (section 3.1) — the :class:`AudioDevice` is
exactly that, and is the natural high-priority activity origin used in the
preemption experiments (audio must not be delayed by video decoding).
"""

from __future__ import annotations

from repro.components.sinks import ActiveSink
from repro.components.sources import Source
from repro.core.events import EOS
from repro.core.typespec import Typespec, props
from repro.media.frames import AudioSample


class AudioSource(Source):
    """Passive source of audio sample blocks."""

    flow_spec = Typespec({props.ITEM_TYPE: "audio-sample"})

    def __init__(
        self,
        blocks: int = 1000,
        block_duration: float = 0.020,
        name: str | None = None,
    ):
        super().__init__(name)
        self._total = blocks
        self.block_duration = block_duration
        self._next = 0

    def pull(self):
        if self._next >= self._total:
            return EOS
        sample = AudioSample(
            seq=self._next,
            pts=self._next * self.block_duration,
            duration=self.block_duration,
        )
        self._next += 1
        return sample


class AudioDevice(ActiveSink):
    """Clock-driven active sink: its own timer pulls one block per period.

    Tracks playout gaps: if the gap between consecutive consumed blocks
    exceeds the block duration by more than half a period, an underrun is
    counted.
    """

    input_spec = Typespec({props.ITEM_TYPE: "audio-sample"})

    def __init__(
        self,
        rate_hz: float = 50.0,  # 20 ms blocks
        name: str | None = None,
        priority: int = 8,
        max_items: int | None = None,
        play_cost: float = 0.0002,
    ):
        super().__init__(rate_hz, name, priority, max_items)
        self.play_cost = play_cost
        self.consumed: list[AudioSample] = []
        self.play_times: list[float] = []
        self._engine = None
        self.stats.update(underruns=0)

    def on_attach(self, engine) -> None:
        self._engine = engine

    def consume(self, sample: AudioSample) -> None:
        if self.play_cost:
            self.charge(self.play_cost)
        now = self._engine.now() if self._engine is not None else 0.0
        if self.play_times:
            gap = now - self.play_times[-1]
            period = 1.0 / self.rate_hz if self.rate_hz else 0.0
            if period and gap > period * 1.5:
                self.stats["underruns"] += 1
        self.consumed.append(sample)
        self.play_times.append(now)
