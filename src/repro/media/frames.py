"""Media item types."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.net.marshal import register_codec


@dataclass(slots=True)
class VideoFrame:
    """One video frame, encoded or decoded.

    ``deps`` names the sequence numbers this frame needs as references
    (empty for I frames).  ``owner`` is set by a decoder that still shares
    the frame as a reference — the consumer must send a ``frame-release``
    event to ``owner`` when done (section 2.2).
    """

    seq: int
    kind: str  # "I" | "P" | "B"
    pts: float
    size: int
    width: int = 640
    height: int = 480
    gop_id: int = 0
    encoded: bool = True
    deps: tuple[int, ...] = ()
    owner: str = ""

    def decoded_copy(self, owner: str = "") -> "VideoFrame":
        raw_size = int(self.width * self.height * 1.5)  # YUV420
        return replace(self, encoded=False, size=raw_size, owner=owner)

    def resized(self, width: int, height: int) -> "VideoFrame":
        scale = (width * height) / max(1, self.width * self.height)
        return replace(
            self,
            width=width,
            height=height,
            size=max(1, int(self.size * scale)),
        )


@dataclass(slots=True)
class AudioSample:
    """A block of audio samples."""

    seq: int
    pts: float
    duration: float
    size: int = 1024


@dataclass(slots=True)
class MidiEvent:
    """A tiny control-rate item: the paper's many-small-items workload
    ("applications ... such as a MIDI mixer")."""

    seq: int
    channel: int
    note: int
    velocity: int
    pts: float = 0.0


# -- wire codecs ---------------------------------------------------------------

# The wire representation is padded to the frame's nominal size, so the
# simulated network sees realistic bandwidth demand (the synthetic frames
# carry no pixel data of their own).
_FRAME_HEADER_BYTES = 120


def _frame_to_fields(f: VideoFrame) -> dict:
    return {
        "seq": f.seq, "kind": f.kind, "pts": f.pts, "size": f.size,
        "width": f.width, "height": f.height, "gop_id": f.gop_id,
        "encoded": f.encoded, "deps": tuple(f.deps),
        "pad": b"\x00" * max(0, f.size - _FRAME_HEADER_BYTES),
    }


def _frame_from_fields(d: dict) -> VideoFrame:
    return VideoFrame(
        seq=d["seq"], kind=d["kind"], pts=d["pts"], size=d["size"],
        width=d["width"], height=d["height"], gop_id=d["gop_id"],
        encoded=d["encoded"], deps=tuple(d["deps"]),
    )


register_codec(VideoFrame, "vframe", _frame_to_fields, _frame_from_fields)

register_codec(
    AudioSample,
    "asample",
    lambda s: {"seq": s.seq, "pts": s.pts, "duration": s.duration,
               "size": s.size},
    lambda d: AudioSample(seq=d["seq"], pts=d["pts"],
                          duration=d["duration"], size=d["size"]),
)

register_codec(
    MidiEvent,
    "midi",
    lambda e: {"seq": e.seq, "channel": e.channel, "note": e.note,
               "velocity": e.velocity, "pts": e.pts},
    lambda d: MidiEvent(seq=d["seq"], channel=d["channel"], note=d["note"],
                        velocity=d["velocity"], pts=d["pts"]),
)
