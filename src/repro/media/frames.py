"""Media item types."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any

from repro.net.marshal import register_codec


def synth_payload(seq: int, size: int) -> bytes:
    """Deterministic synthetic payload for frame ``seq``.

    The content is the frame's sequence number repeated as a little-endian
    64-bit word — cheap to generate (one C-level multiply), and the same
    bytes whether produced per item or per batch, so equivalence tests can
    compare payloads verbatim.
    """
    if size <= 0:
        return b""
    word = struct.pack("<Q", seq & 0xFFFFFFFFFFFFFFFF)
    return (word * ((size + 7) // 8))[:size]


def payload_nbytes(payload: Any) -> int:
    """Byte length of a payload (bytes, bytearray, memoryview or None)."""
    if payload is None:
        return 0
    if isinstance(payload, memoryview):
        return payload.nbytes
    return len(payload)


@dataclass(slots=True)
class VideoFrame:
    """One video frame, encoded or decoded.

    ``deps`` names the sequence numbers this frame needs as references
    (empty for I frames).  ``owner`` is set by a decoder that still shares
    the frame as a reference — the consumer must send a ``frame-release``
    event to ``owner`` when done (section 2.2).

    ``payload`` optionally carries the frame's actual bytes (``size`` long
    when present): ``bytes`` when freshly synthesized, or a ``memoryview``
    slice into a shared buffer when the frame was materialized from a
    columnar batch or a received netpipe frame (zero-copy; see
    docs/MEDIA.md for the ownership rules).  Metadata-only frames keep
    ``payload=None`` and behave exactly as before this field existed.
    """

    seq: int
    kind: str  # "I" | "P" | "B"
    pts: float
    size: int
    width: int = 640
    height: int = 480
    gop_id: int = 0
    encoded: bool = True
    deps: tuple[int, ...] = ()
    owner: str = ""
    payload: Any = None

    def decoded_copy(self, owner: str = "") -> "VideoFrame":
        raw_size = int(self.width * self.height * 1.5)  # YUV420
        return VideoFrame(
            seq=self.seq,
            kind=self.kind,
            pts=self.pts,
            size=raw_size,
            width=self.width,
            height=self.height,
            gop_id=self.gop_id,
            encoded=False,
            deps=self.deps,
            owner=owner,
            payload=(
                synth_payload(self.seq, raw_size)
                if self.payload is not None
                else None
            ),
        )

    def resized(self, width: int, height: int) -> "VideoFrame":
        scale = (width * height) / max(1, self.width * self.height)
        size = max(1, int(self.size * scale))
        return VideoFrame(
            seq=self.seq,
            kind=self.kind,
            pts=self.pts,
            size=size,
            width=width,
            height=height,
            gop_id=self.gop_id,
            encoded=self.encoded,
            deps=self.deps,
            owner=self.owner,
            payload=(
                synth_payload(self.seq, size)
                if self.payload is not None
                else None
            ),
        )


@dataclass(slots=True)
class AudioSample:
    """A block of audio samples.

    ``payload``, when present, holds ``size`` bytes of interleaved signed
    16-bit samples (native byte order) — same conventions as
    :class:`VideoFrame.payload`.
    """

    seq: int
    pts: float
    duration: float
    size: int = 1024
    payload: Any = None


@dataclass(slots=True)
class MidiEvent:
    """A tiny control-rate item: the paper's many-small-items workload
    ("applications ... such as a MIDI mixer")."""

    seq: int
    channel: int
    note: int
    velocity: int
    pts: float = 0.0


# -- wire codecs ---------------------------------------------------------------

# The wire representation is padded to the frame's nominal size, so the
# simulated network sees realistic bandwidth demand even when the synthetic
# frames carry no pixel data of their own.  Frames WITH a payload send the
# payload instead of the pad; metadata-only frames keep the exact pre-payload
# wire bytes (golden traces pin the per-item format bit-for-bit).
_FRAME_HEADER_BYTES = 120


def _frame_to_fields(f: VideoFrame) -> dict:
    fields = {
        "seq": f.seq, "kind": f.kind, "pts": f.pts, "size": f.size,
        "width": f.width, "height": f.height, "gop_id": f.gop_id,
        "encoded": f.encoded, "deps": tuple(f.deps),
    }
    if f.payload is None:
        fields["pad"] = b"\x00" * max(0, f.size - _FRAME_HEADER_BYTES)
    else:
        fields["payload"] = bytes(f.payload)
    return fields


def _frame_from_fields(d: dict) -> VideoFrame:
    return VideoFrame(
        seq=d["seq"], kind=d["kind"], pts=d["pts"], size=d["size"],
        width=d["width"], height=d["height"], gop_id=d["gop_id"],
        encoded=d["encoded"], deps=tuple(d["deps"]),
        payload=d.get("payload"),
    )


register_codec(VideoFrame, "vframe", _frame_to_fields, _frame_from_fields)


def _sample_to_fields(s: AudioSample) -> dict:
    fields = {"seq": s.seq, "pts": s.pts, "duration": s.duration,
              "size": s.size}
    if s.payload is not None:
        fields["payload"] = bytes(s.payload)
    return fields


def _sample_from_fields(d: dict) -> AudioSample:
    return AudioSample(seq=d["seq"], pts=d["pts"], duration=d["duration"],
                       size=d["size"], payload=d.get("payload"))


register_codec(AudioSample, "asample", _sample_to_fields, _sample_from_fields)

register_codec(
    MidiEvent,
    "midi",
    lambda e: {"seq": e.seq, "channel": e.channel, "note": e.note,
               "velocity": e.velocity, "pts": e.pts},
    lambda d: MidiEvent(seq=d["seq"], channel=d["channel"], note=d["note"],
                        velocity=d["velocity"], pts=d["pts"]),
)
