"""The video display sink."""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.components.sinks import Sink
from repro.core.events import EventScope
from repro.core.typespec import Typespec, props
from repro.media.frames import VideoFrame

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import Engine


class VideoDisplay(Sink):
    """Passive display sink with timing statistics.

    Records per-frame arrival times against presentation timestamps and
    derives jitter, lateness and continuity metrics.  After "rendering" a
    shared frame it sends a ``frame-release`` control event back to the
    owning decoder (section 2.2's first example), and on window resize it
    broadcasts ``window-resize`` (the second example; the
    :class:`~repro.media.resize.Resizer` reacts).
    """

    input_spec = Typespec({props.ITEM_TYPE: "video-frame",
                           props.FORMAT: "raw"})

    def __init__(
        self,
        name: str | None = None,
        render_cost: float = 0.0005,
        input_spec: Typespec | None = None,
    ):
        super().__init__(name, input_spec)
        self.render_cost = render_cost
        self.frames: list[VideoFrame] = []
        self.arrivals: list[float] = []
        self._engine: "Engine | None" = None
        self.width = 640
        self.height = 480
        self.stats.update(displayed=0, releases_sent=0, bytes_in=0)

    def on_attach(self, engine: "Engine") -> None:
        self._engine = engine

    # -- data path ----------------------------------------------------------

    def push(self, frame: VideoFrame) -> None:
        self.stats["bytes_in"] += frame.size
        if self.render_cost:
            self.charge(self.render_cost)
        self.frames.append(frame)
        if self._engine is not None:
            self.arrivals.append(self._engine.now())
        self.stats["displayed"] += 1
        if frame.owner:
            # Tell the decoder its shared reference frame may be deleted.
            self.send_event(
                "frame-release",
                payload=frame.seq,
                scope=EventScope.DIRECT,
                target=frame.owner,
            )
            self.stats["releases_sent"] += 1

    # -- user interaction -----------------------------------------------------

    def resize_window(self, width: int, height: int) -> None:
        """Simulated user action: broadcast the new window size ("a video
        resizing component ... needs to be informed by the video display
        whenever the user changes the window size")."""
        self.width = width
        self.height = height
        self.send_event("window-resize", payload=(width, height))

    # -- metrics ----------------------------------------------------------------

    @property
    def displayed_seqs(self) -> list[int]:
        return [f.seq for f in self.frames]

    def continuity(self, total_frames: int) -> float:
        """Fraction of the stream that reached the display."""
        if total_frames <= 0:
            return 1.0
        return len(self.frames) / total_frames

    def interarrival_jitter(self) -> float:
        """Standard deviation of inter-arrival gaps, seconds."""
        if len(self.arrivals) < 3:
            return 0.0
        gaps = [b - a for a, b in zip(self.arrivals, self.arrivals[1:])]
        mean = sum(gaps) / len(gaps)
        variance = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        return math.sqrt(variance)

    def lateness(self) -> list[float]:
        """Arrival time minus (pts + constant offset), per frame.

        The offset is chosen so the first frame is on time; positive values
        are late frames.
        """
        if not self.frames or not self.arrivals:
            return []
        offset = self.arrivals[0] - self.frames[0].pts
        return [
            arrival - (frame.pts + offset)
            for frame, arrival in zip(self.frames, self.arrivals)
        ]

    def late_fraction(self, tolerance: float = 0.010) -> float:
        lates = self.lateness()
        if not lates:
            return 0.0
        return sum(1 for l in lates if l > tolerance) / len(lates)
