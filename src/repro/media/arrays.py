"""Array backend for the columnar media plane.

numpy is an *optional* accelerator (install the ``repro[media]`` extra);
the fallback is the stdlib ``array`` module, which still gives compact
parallel columns and buffer-protocol payload regions — only the fancy
indexing and bulk arithmetic degrade to Python loops.

Setting ``REPRO_MEDIA_PURE=1`` in the environment forces the pure-Python
path even when numpy is importable (CI exercises both paths this way).
Tests may also flip :data:`np` directly (``monkeypatch.setattr(arrays,
"np", None)``); the helpers below dispatch on the *actual column types*,
so batches built under one backend remain readable under the other.
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Iterable, Sequence

try:  # pragma: no cover - exercised via both CI paths
    import numpy as _numpy
except Exception:  # pragma: no cover
    _numpy = None

#: Active numpy module, or None on the pure-Python path.  Module-global so
#: tests can monkeypatch it; read it at call time, never from-import it.
np = None if os.environ.get("REPRO_MEDIA_PURE") else _numpy


def have_numpy() -> bool:
    return np is not None


# -- column builders ----------------------------------------------------------


def i64(values: Iterable[int]):
    """Build an int64 column."""
    if np is not None:
        return np.fromiter(values, dtype=np.int64) if not isinstance(
            values, (list, tuple)
        ) else np.asarray(values, dtype=np.int64)
    return array("q", values)


def f64(values: Iterable[float]):
    """Build a float64 column."""
    if np is not None:
        return np.asarray(
            values if isinstance(values, (list, tuple)) else list(values),
            dtype=np.float64,
        )
    return array("d", values)


def u8(values: Iterable[int]):
    """Build a uint8 column (flags)."""
    if np is not None:
        return np.asarray(
            values if isinstance(values, (list, tuple)) else list(values),
            dtype=np.uint8,
        )
    return array("B", values)


def payload_region(nbytes: int):
    """One contiguous, writable payload region of ``nbytes`` bytes."""
    if np is not None:
        return np.zeros(nbytes, dtype=np.uint8)
    return bytearray(nbytes)


# -- column operations (dispatch on the column's own type) --------------------


def take(column, indices: Sequence[int]):
    """Fancy-index ``column`` by a list of indices, preserving its type."""
    if _numpy is not None and isinstance(column, _numpy.ndarray):
        return column[indices]
    if isinstance(column, array):
        return array(column.typecode, [column[i] for i in indices])
    return [column[i] for i in indices]


def tolist(column) -> list:
    if _numpy is not None and isinstance(column, _numpy.ndarray):
        return column.tolist()
    return list(column)


def col_sum(column) -> int:
    """Sum of an integer column as a Python int."""
    if _numpy is not None and isinstance(column, _numpy.ndarray):
        return int(column.sum())
    return sum(column)


def region_view(region) -> memoryview:
    """A writable-if-possible flat byte view over a payload region."""
    view = memoryview(region)
    if view.format != "B":
        view = view.cast("B")
    return view


def as_int(value) -> int:
    """Normalize a column element (possibly a numpy scalar) to int."""
    return int(value)


def as_float(value) -> float:
    return float(value)


__all__ = [
    "np",
    "have_numpy",
    "i64",
    "f64",
    "u8",
    "payload_region",
    "take",
    "tolist",
    "col_sum",
    "region_view",
    "as_int",
    "as_float",
]
