"""Media substrate: the synthetic video/audio/MIDI workloads.

The paper's evaluation vehicle is a video player; real MPEG files and
devices are substituted by behaviour-preserving models:

* :mod:`repro.media.gop` / :mod:`repro.media.frames` — GOP-structured
  frames with I/P/B dependencies and realistic relative sizes;
* :mod:`repro.media.source` — an ``MpegFileSource`` ("test.mpg") and an
  active camera source;
* :mod:`repro.media.codec` — a decoder with decode cost, reference-frame
  sharing (the section-2.2 control-interaction example) and skipping of
  undecodable frames after upstream loss;
* :mod:`repro.media.dropper` — the priority dropping filter the Figure-1
  feedback loop actuates (B before P before I);
* :mod:`repro.media.display` — a display sink collecting jitter/lateness/
  continuity statistics and emitting window-resize events;
* :mod:`repro.media.resize` — the resizer that reacts to them;
* :mod:`repro.media.audio` — a clock-driven active audio device and a
  vectorized int16 gain mixer;
* :mod:`repro.media.batch` / :mod:`repro.media.arrays` — columnar
  :class:`FrameBatch`/:class:`SampleBatch` runs with one contiguous
  payload region (numpy-backed via the ``repro[media]`` extra, stdlib
  ``array`` otherwise) — the zero-copy media plane (docs/MEDIA.md).
"""

from repro.media.audio import AudioDevice, AudioMixer, AudioSource
from repro.media.batch import FrameBatch, SampleBatch
from repro.media.codec import MpegDecoder, MpegEncoder
from repro.media.display import VideoDisplay
from repro.media.dropper import PriorityDropFilter
from repro.media.frames import (
    AudioSample,
    MidiEvent,
    VideoFrame,
    synth_payload,
)
from repro.media.gop import GopStructure
from repro.media.resize import Resizer
from repro.media.source import CameraSource, MidiSource, MpegFileSource

__all__ = [
    "AudioDevice",
    "AudioMixer",
    "AudioSample",
    "AudioSource",
    "CameraSource",
    "FrameBatch",
    "GopStructure",
    "MidiEvent",
    "MidiSource",
    "MpegDecoder",
    "MpegEncoder",
    "MpegFileSource",
    "PriorityDropFilter",
    "Resizer",
    "SampleBatch",
    "VideoDisplay",
    "VideoFrame",
    "synth_payload",
]
