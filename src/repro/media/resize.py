"""The resizer: control interaction from the display (section 2.2)."""

from __future__ import annotations

from repro.core.styles import FunctionComponent
from repro.core.typespec import Typespec, props
from repro.media.frames import VideoFrame


class Resizer(FunctionComponent):
    """Scales decoded frames to the display's window size.

    "A video resizing component ... needs to be informed by the video
    display whenever the user changes the window size" — the display
    broadcasts ``window-resize`` and this component adapts, mid-stream,
    under the synchronized-object guarantees (the handler never interleaves
    with ``convert``).
    """

    input_spec = Typespec({props.ITEM_TYPE: "video-frame",
                           props.FORMAT: "raw"})
    events_handled = frozenset({"window-resize"})

    def __init__(
        self,
        width: int = 640,
        height: int = 480,
        cost_per_mpixel: float = 0.002,
        name: str | None = None,
    ):
        super().__init__(name)
        self.width = width
        self.height = height
        self.cost_per_mpixel = cost_per_mpixel
        self.stats.update(resized=0)
        #: (width, height, at-item-count) history.
        self.size_changes: list[tuple[int, int, int]] = []

    def on_window_resize(self, event) -> None:
        self.width, self.height = event.payload
        self.size_changes.append(
            (self.width, self.height, self.stats["items_in"])
        )

    def convert(self, frame: VideoFrame) -> VideoFrame:
        if frame.width == self.width and frame.height == self.height:
            return frame
        if self.cost_per_mpixel:
            self.charge(
                self.cost_per_mpixel * (self.width * self.height) / 1e6
            )
        self.stats["resized"] += 1
        return frame.resized(self.width, self.height)

    def transform_typespec(self, spec: Typespec) -> Typespec:
        return spec.with_props(
            **{props.FRAME_WIDTH: self.width, props.FRAME_HEIGHT: self.height}
        )
