"""The resizer: control interaction from the display (section 2.2)."""

from __future__ import annotations

from repro.core.styles import FunctionComponent
from repro.core.typespec import Typespec, props
from repro.media import arrays
from repro.media.batch import FrameBatch, build_payload_region
from repro.media.frames import VideoFrame, synth_payload


class Resizer(FunctionComponent):
    """Scales decoded frames to the display's window size.

    "A video resizing component ... needs to be informed by the video
    display whenever the user changes the window size" — the display
    broadcasts ``window-resize`` and this component adapts, mid-stream,
    under the synchronized-object guarantees (the handler never interleaves
    with ``convert``).
    """

    input_spec = Typespec({props.ITEM_TYPE: "video-frame",
                           props.FORMAT: "raw"})
    events_handled = frozenset({"window-resize"})

    def __init__(
        self,
        width: int = 640,
        height: int = 480,
        cost_per_mpixel: float = 0.002,
        name: str | None = None,
    ):
        super().__init__(name)
        self.width = width
        self.height = height
        self.cost_per_mpixel = cost_per_mpixel
        self.stats.update(resized=0, bytes_in=0, bytes_out=0)
        #: (width, height, at-item-count) history.
        self.size_changes: list[tuple[int, int, int]] = []

    def on_window_resize(self, event) -> None:
        self.width, self.height = event.payload
        self.size_changes.append(
            (self.width, self.height, self.stats["items_in"])
        )

    def convert(self, frame: VideoFrame) -> VideoFrame:
        self.stats["bytes_in"] += frame.size
        if frame.width == self.width and frame.height == self.height:
            self.stats["bytes_out"] += frame.size
            return frame
        if self.cost_per_mpixel:
            self.charge(
                self.cost_per_mpixel * (self.width * self.height) / 1e6
            )
        self.stats["resized"] += 1
        out = frame.resized(self.width, self.height)
        self.stats["bytes_out"] += out.size
        return out

    def convert_many(self, items):
        """Vectorized path: scale a whole columnar run at once.

        Frames already at the window size pass through untouched
        (payload views shared, zero copy); resized frames get the same
        per-item-exact size arithmetic and regenerated payloads that
        :meth:`~repro.media.frames.VideoFrame.resized` produces.
        """
        kinds = getattr(items, "kind", None)
        if not isinstance(kinds, str):
            return super().convert_many(items)
        stats = self.stats
        count = len(items)
        stats["bytes_in"] += items.nominal_bytes
        W, H = self.width, self.height
        widths, heights = items.width, items.height
        sizes, seq_col = items.size, items.seq
        resize = [
            i for i in range(count)
            if int(widths[i]) != W or int(heights[i]) != H
        ]
        if not resize:
            stats["bytes_out"] += items.nominal_bytes
            return items
        if self.cost_per_mpixel:
            per_frame = self.cost_per_mpixel * (W * H) / 1e6
            for _ in resize:
                self.charge(per_frame)
        stats["resized"] += len(resize)
        resize_set = set(resize)
        target = W * H
        new_sizes: list[int] = []
        for i in range(count):
            size = int(sizes[i])
            if i in resize_set:
                scale = target / max(1, int(widths[i]) * int(heights[i]))
                size = max(1, int(size * scale))
            new_sizes.append(size)
        region = offsets = views = None
        if items.has_payload:
            if len(resize) == count:
                region, offsets = build_payload_region(
                    arrays.tolist(seq_col), new_sizes
                )
            else:
                views = [
                    memoryview(synth_payload(int(seq_col[i]), new_sizes[i]))
                    if i in resize_set
                    else items.payload_view(i)
                    for i in range(count)
                ]
        out = FrameBatch(
            seq=seq_col,
            kind=kinds,
            pts=items.pts,
            size=arrays.i64(new_sizes),
            width=arrays.i64([W] * count),
            height=arrays.i64([H] * count),
            gop_id=items.gop_id,
            encoded=items.encoded,
            deps=items.deps,
            owner=items.owner,
            region=region,
            offsets=offsets,
            views=views,
        )
        stats["bytes_out"] += out.nominal_bytes
        return out

    def transform_typespec(self, spec: Typespec) -> Typespec:
        return spec.with_props(
            **{props.FRAME_WIDTH: self.width, props.FRAME_HEIGHT: self.height}
        )
