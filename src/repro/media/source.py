"""Media sources."""

from __future__ import annotations

import random

from repro.components.sources import ActiveSource, Source
from repro.core.events import EOS
from repro.core.typespec import Interval, Typespec, props
from repro.media.frames import MidiEvent, synth_payload
from repro.media.gop import GopStructure


def _video_spec(gop: GopStructure) -> Typespec:
    return Typespec(
        {
            props.ITEM_TYPE: "video-frame",
            props.FORMAT: "mpeg",
            props.FRAME_RATE: Interval(0.0, gop.fps),
            props.FRAME_WIDTH: gop.width,
            props.FRAME_HEIGHT: gop.height,
        }
    )


class MpegFileSource(Source):
    """Passive source reading a (synthetic) MPEG file.

    The paper's quickstart opens ``mpeg_file source("test.mpg")``; here the
    "file" is generated deterministically from the file name (used as the
    RNG seed), so every run reads the same movie without shipping media.
    """

    def __init__(
        self,
        filename: str = "test.mpg",
        frames: int = 300,
        gop: GopStructure | None = None,
        name: str | None = None,
        payloads: bool = False,
    ):
        self.filename = filename
        self.gop = gop or GopStructure(seed=sum(map(ord, filename)))
        super().__init__(name, flow_spec=_video_spec(self.gop))
        self._total = frames
        self._next = 0
        #: Attach synthetic payload bytes to every frame (the
        #: payload-weighted media plane; metadata-only when False).
        self.payloads = payloads
        self.stats.update(bytes_out=0)

    def pull(self):
        if self._next >= self._total:
            return EOS
        frame = self.gop.frame(self._next)
        if self.payloads:
            frame.payload = synth_payload(frame.seq, frame.size)
        self.stats["bytes_out"] += frame.size
        self._next += 1
        return frame

    def pull_many(self, n: int):
        """Batch pull entry (columnar fast path): up to ``n`` frames as
        ONE FrameBatch; ``[EOS]`` once exhausted.  The frame stream is
        identical to per-item :meth:`pull` calls."""
        remaining = self._total - self._next
        if remaining <= 0:
            return [EOS]
        count = n if n < remaining else remaining
        batch = self.gop.frame_batch(
            self._next, count, payloads=self.payloads
        )
        self._next += count
        self.stats["bytes_out"] += batch.nominal_bytes
        return batch


class CameraSource(ActiveSource):
    """Active, self-timed source producing frames at its capture rate."""

    def __init__(
        self,
        rate_hz: float = 30.0,
        gop: GopStructure | None = None,
        name: str | None = None,
        priority: int = 0,
        max_items: int | None = None,
    ):
        super().__init__(rate_hz, name, priority, max_items)
        self.gop = gop or GopStructure(fps=rate_hz)
        self.output_props = {
            props.ITEM_TYPE: "video-frame",
            props.FORMAT: "mpeg",
            props.FRAME_RATE: rate_hz,
        }
        self._next = 0

    def generate(self):
        frame = self.gop.frame(self._next)
        self._next += 1
        return frame


class MidiSource(Source):
    """Passive source of many tiny MIDI events (section 4's stress case:
    "pipelines that handle many control events or many small data items
    such as a MIDI mixer")."""

    flow_spec = Typespec({props.ITEM_TYPE: "midi-event"})

    def __init__(
        self,
        events: int = 1000,
        channel: int = 0,
        seed: int = 99,
        rate_hz: float = 500.0,
        name: str | None = None,
    ):
        super().__init__(name)
        self._total = events
        self._channel = channel
        self._rng = random.Random(seed + channel)
        self._rate = rate_hz
        self._next = 0

    def pull(self):
        if self._next >= self._total:
            return EOS
        event = MidiEvent(
            seq=self._next,
            channel=self._channel,
            note=self._rng.randrange(21, 109),
            velocity=self._rng.randrange(1, 128),
            pts=self._next / self._rate,
        )
        self._next += 1
        return event
