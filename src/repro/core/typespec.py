"""Typespecs — extensible descriptions of information flows (section 2.3).

A :class:`Typespec` maps property names to *property values*.  A property
value is one of

* :data:`ANY` — undefined, "meaning either don't know or don't care";
* :class:`Choices` — a finite set of acceptable alternatives;
* :class:`Interval` — a closed numeric range (QoS parameters);
* a plain scalar — exactly one acceptable value.

Typespecs are immutable.  The two fundamental operations are

* **intersection** (:meth:`Typespec.intersect`) — the flows acceptable to
  both sides of a connection; an empty intersection on any property raises
  :class:`~repro.errors.TypespecMismatch`, and
* **subset** (:meth:`Typespec.is_subset_of`) — "an input or output Typespec
  can be a subset of a given output or input Typespec, because that stage
  supports only a subset of flow types".

Because Typespecs are incremental, components do not carry one fixed
Typespec; each pipeline component *transforms* a Typespec on one port to
Typespecs on its other ports (see
:meth:`repro.core.component.Component.transform_typespec`).
"""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Number
from typing import Any, Iterable, Iterator, Mapping

from repro.errors import TypespecMismatch


class _Any:
    """Singleton "don't know / don't care" property value (the top element)."""

    _instance: "_Any | None" = None

    def __new__(cls) -> "_Any":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ANY"


#: The undefined property value.
ANY = _Any()


@dataclass(frozen=True)
class Choices:
    """A finite set of acceptable alternatives for a property."""

    options: frozenset

    def __init__(self, options: Iterable):
        object.__setattr__(self, "options", frozenset(options))

    def __repr__(self) -> str:
        inner = ", ".join(sorted(map(repr, self.options)))
        return f"Choices({{{inner}}})"

    def __bool__(self) -> bool:
        return bool(self.options)


@dataclass(frozen=True)
class Interval:
    """A closed numeric range ``[lo, hi]`` for a QoS parameter."""

    lo: float
    hi: float

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    def __contains__(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def __repr__(self) -> str:
        return f"Interval({self.lo}, {self.hi})"


def normalize(value: Any) -> Any:
    """Coerce user input into a canonical property value.

    Sets/frozensets/lists become :class:`Choices`; scalars stay scalars;
    :data:`ANY`, :class:`Choices` and :class:`Interval` pass through.
    """
    if value is ANY or isinstance(value, Interval):
        return value
    if isinstance(value, (Choices, set, frozenset, list)):
        options = value.options if isinstance(value, Choices) \
            else frozenset(value)
        if not options:
            raise ValueError(
                "a property with no acceptable alternatives admits no flow"
            )
        # Canonical form: a singleton set of alternatives IS that value,
        # keeping the algebra idempotent.
        return _simplify_choices(options)
    if isinstance(value, tuple):
        raise TypeError(
            "ambiguous tuple property value; use Interval(lo, hi) for ranges "
            "or Choices([...]) for alternatives"
        )
    return value


def intersect_values(a: Any, b: Any) -> Any:
    """Intersection of two property values; ``None`` when empty.

    Mixed scalar/Choices/Interval combinations behave set-theoretically: a
    scalar is a singleton, an Interval is the set of numbers it contains.
    """
    if a is ANY:
        return b
    if b is ANY:
        return a
    if isinstance(a, Choices) and isinstance(b, Choices):
        common = a.options & b.options
        return _simplify_choices(common)
    if isinstance(a, Choices):
        return _intersect_choices_other(a, b)
    if isinstance(b, Choices):
        return _intersect_choices_other(b, a)
    if isinstance(a, Interval) and isinstance(b, Interval):
        lo, hi = max(a.lo, b.lo), min(a.hi, b.hi)
        return Interval(lo, hi) if lo <= hi else None
    if isinstance(a, Interval):
        return _intersect_interval_scalar(a, b)
    if isinstance(b, Interval):
        return _intersect_interval_scalar(b, a)
    return a if a == b else None


def _simplify_choices(options: frozenset) -> Any:
    if not options:
        return None
    if len(options) == 1:
        return next(iter(options))
    return Choices(options)


def _intersect_choices_other(choices: Choices, other: Any) -> Any:
    if isinstance(other, Interval):
        kept = frozenset(
            o for o in choices.options if isinstance(o, Number) and o in other
        )
        return _simplify_choices(kept)
    return other if other in choices.options else None


def _intersect_interval_scalar(interval: Interval, scalar: Any) -> Any:
    if isinstance(scalar, Number) and scalar in interval:
        return scalar
    return None


def value_is_subset(a: Any, b: Any) -> bool:
    """True when every concrete value satisfying ``a`` also satisfies ``b``."""
    if b is ANY:
        return True
    if a is ANY:
        return False
    meet = intersect_values(a, b)
    if meet is None:
        return False
    return _values_equal(meet, a)


def _values_equal(a: Any, b: Any) -> bool:
    if isinstance(a, Choices) and not isinstance(b, Choices):
        return False
    if isinstance(b, Choices) and not isinstance(a, Choices):
        return False
    return a == b


class Typespec(Mapping):
    """An immutable mapping of property names to property values.

    Properties absent from the mapping are :data:`ANY`.
    """

    __slots__ = ("_props",)

    def __init__(self, props_map: Mapping[str, Any] | None = None, **props_kw: Any):
        merged: dict[str, Any] = {}
        for source in (props_map or {}), props_kw:
            for key, value in source.items():
                value = normalize(value)
                if value is not ANY:
                    merged[key] = value
        self._props = merged

    # -- construction helpers ------------------------------------------------

    @classmethod
    def any(cls) -> "Typespec":
        """The Typespec that admits every flow."""
        return cls()

    def with_props(self, **props_kw: Any) -> "Typespec":
        """Functional update: returns a new Typespec with properties set or,
        when a value is :data:`ANY`, removed."""
        merged = dict(self._props)
        for key, value in props_kw.items():
            value = normalize(value)
            if value is ANY:
                merged.pop(key, None)
            else:
                merged[key] = value
        return Typespec(merged)

    def without(self, *keys: str) -> "Typespec":
        merged = {k: v for k, v in self._props.items() if k not in keys}
        return Typespec(merged)

    # -- Mapping protocol ----------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        return self._props.get(key, ANY)

    def __iter__(self) -> Iterator[str]:
        return iter(self._props)

    def __len__(self) -> int:
        return len(self._props)

    def __contains__(self, key: object) -> bool:
        return key in self._props

    # -- core operations -------------------------------------------------

    def intersect(self, other: "Typespec", context: str = "") -> "Typespec":
        """The common flows of two Typespecs.

        Raises :class:`TypespecMismatch` when any shared property has an
        empty intersection, reporting all conflicting properties at once.
        """
        merged: dict[str, Any] = dict(self._props)
        conflicts: dict[str, tuple] = {}
        for key, value in other._props.items():
            if key not in merged:
                merged[key] = value
                continue
            meet = intersect_values(merged[key], value)
            if meet is None:
                conflicts[key] = (merged[key], value)
            else:
                merged[key] = meet
        if conflicts:
            detail = "; ".join(
                f"{key}: {left!r} vs {right!r}"
                for key, (left, right) in sorted(conflicts.items())
            )
            prefix = f"{context}: " if context else ""
            raise TypespecMismatch(
                f"{prefix}no common flow ({detail})", conflicts=conflicts
            )
        return Typespec(merged)

    def compatible_with(self, other: "Typespec") -> bool:
        """True when the intersection is non-empty."""
        try:
            self.intersect(other)
        except TypespecMismatch:
            return False
        return True

    def is_subset_of(self, other: "Typespec") -> bool:
        """True when every flow satisfying ``self`` satisfies ``other``."""
        return all(
            value_is_subset(self[key], other[key]) for key in other._props
        )

    def admits(self, **concrete: Any) -> bool:
        """True when concrete property values satisfy this Typespec."""
        for key, value in concrete.items():
            constraint = self[key]
            if constraint is ANY:
                continue
            if isinstance(constraint, Choices):
                if value not in constraint.options:
                    return False
            elif isinstance(constraint, Interval):
                if not (isinstance(value, Number) and value in constraint):
                    return False
            elif constraint != value:
                return False
        return True

    # -- misc --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Typespec) and self._props == other._props

    def __hash__(self) -> int:
        return hash(frozenset(self._props.items()))

    def __repr__(self) -> str:
        if not self._props:
            return "Typespec.any()"
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._props.items()))
        return f"Typespec({inner})"


class props:
    """Standard property names used by the built-in components.

    The set is open — "Typespecs are extensible and new properties can be
    added as needed" — these constants merely keep the built-ins consistent.
    """

    #: Kind of information item, e.g. ``"video-frame"``, ``"midi-event"``.
    ITEM_TYPE = "item_type"
    #: Encoding of the item, e.g. ``"mpeg"``, ``"raw"``, ``"bytes"``.
    FORMAT = "format"
    #: Behaviour of push on a full buffer: ``"block"`` or ``"drop"``.
    ON_FULL = "on_full"
    #: Behaviour of pull on an empty buffer: ``"block"`` or ``"nil"``.
    ON_EMPTY = "on_empty"
    #: Frames (items) per second.
    FRAME_RATE = "frame_rate"
    #: Video frame dimensions, pixels.
    FRAME_WIDTH = "frame_width"
    FRAME_HEIGHT = "frame_height"
    #: End-to-end latency bound, seconds.
    LATENCY = "latency"
    #: Jitter bound, seconds.
    JITTER = "jitter"
    #: Bandwidth of the underlying transport, bytes per second.
    BANDWIDTH = "bandwidth"
    #: Expected loss rate of the underlying transport, 0..1.
    LOSS_RATE = "loss_rate"
    #: Node where the flow currently is; "changed only by netpipes".
    LOCATION = "location"
