"""Pipeline composition (sections 2.1 and 2.3).

Components are composed with the ``>>`` operator — exactly the high-level
interface the paper demonstrates::

    source >> decode >> pump >> sink

``>>`` connects the single free out-port of its left operand to the single
free in-port of its right operand.  Non-linear topologies (tees) use
:func:`connect` on explicit ports and merge the operands' pipelines.

Every connection performs the paper's dynamic checks:

* **polarity** — fixed polarities must be opposite; polymorphic (α) ports
  acquire induced polarities that propagate through filter chains;
* **typespec** — flow Typespecs are derived incrementally from the sources
  forward through each component's Typespec transformation, and a connection
  whose intersection is empty raises
  :class:`~repro.errors.TypespecMismatch` ("If the components were not
  compatible, the composition operator >> would throw an exception").
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.component import Component, Port, Role
from repro.core.polarity import Direction
from repro.core.typespec import Typespec
from repro.errors import CompositionError, PortError

__all__ = ["Pipeline", "connect", "pipeline"]


def connect(out_port: Port, in_port: Port, check_typespecs: bool = True) -> None:
    """Connect an out-port to an in-port, checking polarity (and letting the
    owning pipelines re-derive Typespecs if requested)."""
    if out_port.direction is not Direction.OUT:
        raise PortError(f"{out_port.qualified_name()} is not an out-port")
    if in_port.direction is not Direction.IN:
        raise PortError(f"{in_port.qualified_name()} is not an in-port")
    if out_port.connected:
        raise PortError(f"{out_port.qualified_name()} is already connected")
    if in_port.connected:
        raise PortError(f"{in_port.qualified_name()} is already connected")
    if (
        out_port.mode is not None
        and in_port.mode is not None
        and out_port.mode is not in_port.mode
    ):
        raise CompositionError(
            f"cannot connect {out_port.qualified_name()} "
            f"(polarity {out_port.polarity}) to {in_port.qualified_name()} "
            f"(polarity {in_port.polarity}): same polarity on both ports"
        )

    out_port.peer = in_port
    in_port.peer = out_port

    # Induce polarity across the new connection.
    if out_port.mode is not None and in_port.mode is None:
        in_port.component.fix_port_mode(in_port.name, out_port.mode)
    elif in_port.mode is not None and out_port.mode is None:
        out_port.component.fix_port_mode(out_port.name, in_port.mode)

    if check_typespecs:
        derive_typespecs(reachable_components(out_port.component))


class Pipeline:
    """A set of connected components.

    A Pipeline is itself component-like: it can be extended with ``>>``, it
    exposes free ports, and its end-to-end Typespec can be queried —
    "facilitating the composition of larger building blocks and the
    construction of incremental pipelines".
    """

    def __init__(self, components: Iterable[Component] = ()):
        self._components: list[Component] = []
        for component in components:
            self.add(component)

    # ------------------------------------------------------------ building

    def add(self, component: Component) -> Component:
        if component not in self._components:
            self._components.append(component)
        return component

    @staticmethod
    def join(left, right) -> "Pipeline":
        """Implements ``left >> right`` for components and pipelines."""
        left_pipe = left if isinstance(left, Pipeline) else Pipeline([left])
        right_pipe = right if isinstance(right, Pipeline) else Pipeline([right])
        out_port = left_pipe.free_out_port()
        in_port = right_pipe.free_in_port()
        merged = Pipeline(left_pipe._components + right_pipe._components)
        connect(out_port, in_port, check_typespecs=False)
        merged.derive_typespecs()
        return merged

    def __rshift__(self, other) -> "Pipeline":
        return Pipeline.join(self, other)

    def connect(self, out_port: Port, in_port: Port) -> "Pipeline":
        """Connect two ports of components belonging to this pipeline
        (explicit form used for tees)."""
        for port in (out_port, in_port):
            self.add(port.component)
        connect(out_port, in_port, check_typespecs=False)
        self.derive_typespecs()
        return self

    # ------------------------------------------------------------ queries

    @property
    def components(self) -> list[Component]:
        return list(self._components)

    def __iter__(self) -> Iterator[Component]:
        return iter(self._components)

    def __len__(self) -> int:
        return len(self._components)

    def __contains__(self, component: Component) -> bool:
        return component in self._components

    def component(self, name: str) -> Component:
        for candidate in self._components:
            if candidate.name == name:
                return candidate
        raise PortError(f"no component named {name!r} in pipeline")

    def free_in_ports(self) -> list[Port]:
        return [
            port
            for component in self._components
            for port in component.in_ports()
            if not port.connected
        ]

    def free_out_ports(self) -> list[Port]:
        return [
            port
            for component in self._components
            for port in component.out_ports()
            if not port.connected
        ]

    def free_in_port(self) -> Port:
        return _single(self.free_in_ports(), "free in-port")

    def free_out_port(self) -> Port:
        return _single(self.free_out_ports(), "free out-port")

    def sources(self) -> list[Component]:
        return [c for c in self._components if c.role is Role.SOURCE]

    def sinks(self) -> list[Component]:
        return [c for c in self._components if c.role is Role.SINK]

    def is_complete(self) -> bool:
        """True when every port of every component is connected."""
        return not self.free_in_ports() and not self.free_out_ports()

    # ------------------------------------------------------------ typespec

    def derive_typespecs(self) -> dict[str, Typespec]:
        """(Re-)derive the flow Typespec on every connection.

        Returns a mapping from ``"component.port"`` (out-port side) to the
        derived Typespec, raising :class:`TypespecMismatch` on conflict.
        """
        return derive_typespecs(self._components)

    def typespec_at(self, port: Port) -> Typespec:
        """The derived flow Typespec on the connection at ``port``."""
        specs = self.derive_typespecs()
        if port.direction is Direction.OUT:
            key_port = port
        else:
            if port.peer is None:
                raise PortError(f"{port.qualified_name()} is not connected")
            key_port = port.peer
        return specs[key_port.qualified_name()]

    def end_to_end_typespec(self) -> Typespec:
        """Typespec of the flow arriving at the (single) sink."""
        sinks = self.sinks()
        if len(sinks) != 1:
            raise PortError(
                f"end_to_end_typespec() needs exactly one sink, "
                f"found {len(sinks)}"
            )
        return self.typespec_at(sinks[0].in_port)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = " >> ".join(c.name for c in self._components)
        return f"<Pipeline {names}>"


def pipeline(*components: Component) -> Pipeline:
    """Build a linear pipeline: ``pipeline(a, b, c)`` == ``a >> b >> c``."""
    if not components:
        return Pipeline()
    result: Pipeline | Component = components[0]
    for component in components[1:]:
        result = Pipeline.join(result, component)
    if isinstance(result, Component):
        return Pipeline([result])
    return result


def _single(items: list, what: str):
    if len(items) != 1:
        names = ", ".join(p.qualified_name() for p in items) or "none"
        raise PortError(
            f">> needs exactly one {what} on each operand; found: {names}"
        )
    return items[0]


# ---------------------------------------------------------------------------
# Typespec derivation over the component graph
# ---------------------------------------------------------------------------


def reachable_components(start: Component) -> list[Component]:
    """All components connected (transitively) to ``start``."""
    seen: list[Component] = []
    stack = [start]
    while stack:
        component = stack.pop()
        if component in seen:
            continue
        seen.append(component)
        for port in component.ports.values():
            if port.peer is not None:
                stack.append(port.peer.component)
    return seen


def derive_typespecs(components: Iterable[Component]) -> dict[str, Typespec]:
    """Fold Typespec transformations forward through the component graph.

    Walks components in topological order (data-flow edges only; feedback
    travels as control events and never creates data cycles).  For each
    component the incoming flow specs are intersected with the component's
    input capability — raising :class:`TypespecMismatch` with the offending
    connection in the message — then transformed to its out-ports.
    """
    ordered = _topological(list(components))
    flow_at_out_port: dict[str, Typespec] = {}
    for component in ordered:
        incoming = Typespec.any()
        for port in component.in_ports():
            if port.peer is None:
                continue
            upstream_spec = flow_at_out_port.get(
                port.peer.qualified_name(), Typespec.any()
            )
            incoming = incoming.intersect(
                upstream_spec,
                context=f"merging flows into {component.name!r}",
            )
        narrowed = incoming.intersect(
            component.accepts(),
            context=f"flow into {component.name!r}",
        )
        outgoing = component.transform_typespec(narrowed)
        for port in component.out_ports():
            flow_at_out_port[port.qualified_name()] = outgoing
    return flow_at_out_port


def _topological(components: list[Component]) -> list[Component]:
    indegree: dict[Component, int] = {c: 0 for c in components}
    for component in components:
        for port in component.in_ports():
            if port.peer is not None and port.peer.component in indegree:
                indegree[component] += 1
    queue = [c for c, d in indegree.items() if d == 0]
    ordered: list[Component] = []
    while queue:
        component = queue.pop(0)
        ordered.append(component)
        for port in component.out_ports():
            if port.peer is None:
                continue
            downstream = port.peer.component
            if downstream in indegree:
                indegree[downstream] -= 1
                if indegree[downstream] == 0:
                    queue.append(downstream)
    if len(ordered) != len(components):
        cyclic = [c.name for c in components if c not in ordered]
        raise CompositionError(
            f"data-flow cycle involving: {', '.join(sorted(cyclic))} "
            "(feedback must use control events, not data connections)"
        )
    return ordered
