"""Component and port model.

Every pipeline stage is a :class:`Component` with named, directed
:class:`Port` s.  A component has a structural :class:`Role` (source, sink,
pump, buffer, transform, tee) that the glue layer uses to assign threads,
and — for transforms and passive endpoints — an activity
:class:`~repro.core.styles.Style` describing how its code is written.

Ports carry polarity; connections carry a *mode* (push or pull).  Fixing the
mode of one port may induce the mode of others through the component's
``mode_links`` ("when one end is connected to a port with a fixed polarity,
the other end of the filter or filter chain acquires an induced polarity").
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.core import events as ev
from repro.core.items import is_nil
from repro.core.naming import fresh_name
from repro.core.polarity import Direction, Mode, Polarity, polarity_for
from repro.core.typespec import Typespec
from repro.errors import PolarityError, PortError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.composition import Pipeline


class Role(enum.Enum):
    SOURCE = "source"
    SINK = "sink"
    PUMP = "pump"
    BUFFER = "buffer"
    TRANSFORM = "transform"
    TEE = "tee"


class Port:
    """One end of a component."""

    __slots__ = ("name", "direction", "component", "mode", "peer")

    def __init__(
        self,
        name: str,
        direction: Direction,
        component: "Component",
        mode: Mode | None = None,
    ):
        self.name = name
        self.direction = direction
        self.component = component
        #: Mode of the connection this port is on; ``None`` until resolved.
        self.mode = mode
        self.peer: Port | None = None

    @property
    def polarity(self) -> Polarity:
        """The paper's polarity view of this port (α while unresolved)."""
        return polarity_for(self.direction, self.mode)

    @property
    def connected(self) -> bool:
        return self.peer is not None

    @property
    def is_input(self) -> bool:
        return self.direction is Direction.IN

    def qualified_name(self) -> str:
        return f"{self.component.name}.{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Port {self.qualified_name()} {self.direction.value}"
            f" polarity={self.polarity}>"
        )


class Component:
    """Base class of every pipeline stage.

    Subclasses declare their structure with :meth:`add_in_port` /
    :meth:`add_out_port` (linear components get default ``in``/``out`` ports
    from the style base classes), their flow constraints through
    ``input_spec`` / ``output_props`` / :meth:`transform_typespec`, and their
    control-event interface through ``events_handled`` / ``on_<kind>``
    methods.
    """

    #: Structural role; overridden by subclasses.
    role: Role = Role.TRANSFORM
    #: Activity style (set by the style base classes; None for pumps etc.).
    style = None

    #: Typespec capability of the component's input(s).
    input_spec: Typespec = Typespec.any()
    #: Properties stamped onto the output flow (e.g. a decoder sets
    #: ``format="raw"``).
    output_props: dict[str, Any] = {}

    #: Event kinds this component reacts to (beyond ubiquitous start/stop).
    events_handled: frozenset[str] = frozenset()
    #: Event kinds this component sends to its neighbours; used for the
    #: pipeline operability check (section 2.3: "The capability of
    #: components to send or react to these control events is included in
    #: the Typespec to ensure that the resulting pipeline is operational").
    events_sent_upstream: frozenset[str] = frozenset()
    events_sent_downstream: frozenset[str] = frozenset()

    #: Pairs of port names whose connections must share one mode.  For
    #: linear transforms this defaults to (("in", "out"),): the α → α rule.
    mode_links: tuple[tuple[str, str], ...] = ()

    #: Flow-conservation claim checked by :mod:`repro.check.invariants`:
    #: None (default) means 1:1 — every item in comes out exactly once,
    #: minus declared drops and currently retained items.  Components with
    #: a different arity (batchers, fragmenters, multicast tees) set this
    #: to False to opt out of the count check.
    conserving: bool | None = None

    def __init__(self, name: str | None = None):
        self.name = name or fresh_name(type(self).__name__)
        self.ports: dict[str, Port] = {}
        #: Item counters maintained by the runtime.
        self.stats: dict[str, int] = {"items_in": 0, "items_out": 0}
        self._cost_accumulator = 0.0
        # Wiring installed by the runtime before the pipeline starts:
        # per-out-port emit callables and per-in-port intake callables.
        self._emitters: dict[str, Callable[[Any], None]] = {}
        self._intakes: dict[str, Callable[[], Any]] = {}
        self._event_sender: Callable[[ev.Event], None] | None = None

    # ------------------------------------------------------------ ports

    def add_in_port(self, name: str = "in", mode: Mode | None = None) -> Port:
        return self._add_port(Port(name, Direction.IN, self, mode))

    def add_out_port(self, name: str = "out", mode: Mode | None = None) -> Port:
        return self._add_port(Port(name, Direction.OUT, self, mode))

    def _add_port(self, port: Port) -> Port:
        if port.name in self.ports:
            raise PortError(f"duplicate port {port.name!r} on {self.name!r}")
        self.ports[port.name] = port
        return port

    def port(self, name: str) -> Port:
        try:
            return self.ports[name]
        except KeyError:
            raise PortError(f"{self.name!r} has no port {name!r}") from None

    @property
    def in_port(self) -> Port:
        return self.port("in")

    @property
    def out_port(self) -> Port:
        return self.port("out")

    def in_ports(self) -> list[Port]:
        return [p for p in self.ports.values() if p.is_input]

    def out_ports(self) -> list[Port]:
        return [p for p in self.ports.values() if not p.is_input]

    # ------------------------------------------------------------ polarity

    def fix_port_mode(self, port_name: str, mode: Mode) -> None:
        """Fix a port's connection mode, propagating induced modes.

        Raises :class:`PolarityError` on conflict with an already-fixed mode.
        """
        port = self.port(port_name)
        if port.mode is mode:
            return
        if port.mode is not None:
            raise PolarityError(
                f"port {port.qualified_name()} already operates in "
                f"{port.mode} mode; cannot switch to {mode} "
                f"(polarity {port.polarity} is fixed)"
            )
        port.mode = mode
        # Induced polarity: propagate through same-mode links, then across
        # the connection to the peer component (filter chains).
        for a, b in self.mode_links:
            if a == port_name:
                self.fix_port_mode(b, mode)
            elif b == port_name:
                self.fix_port_mode(a, mode)
        if port.peer is not None and port.peer.mode is None:
            port.peer.component.fix_port_mode(port.peer.name, mode)

    # ------------------------------------------------------------ typespec

    def accepts(self) -> Typespec:
        """Typespec capability of this component's input."""
        return self.input_spec

    def transform_typespec(self, spec: Typespec) -> Typespec:
        """Derive the output flow Typespec from the (already intersected)
        input flow Typespec.  Default: pass through, stamping
        ``output_props``."""
        if not self.output_props:
            return spec
        return spec.with_props(**self.output_props)

    # ------------------------------------------------------------ events

    def handle_event(self, event: ev.Event) -> None:
        """Dispatch a control event to an ``on_<kind>`` method if present.

        The runtime guarantees handlers never run concurrently with this
        component's data-processing functions (synchronized objects,
        section 3.2).
        """
        method = getattr(self, "on_" + event.kind.replace("-", "_"), None)
        if method is not None:
            method(event)

    def send_event(
        self,
        kind: str,
        payload: Any = None,
        scope: ev.EventScope = ev.EventScope.BROADCAST,
        target: str | None = None,
    ) -> None:
        """Send a control event; requires the pipeline to be running."""
        if self._event_sender is None:
            raise PortError(
                f"{self.name!r} is not attached to a running pipeline; "
                "cannot send events"
            )
        self._event_sender(
            ev.Event(kind=kind, payload=payload, source=self.name,
                     scope=scope, target=target)
        )

    # ------------------------------------------------------------ CPU model

    def charge(self, seconds: float) -> None:
        """Account ``seconds`` of simulated CPU time for the current data
        item (drained by the runtime into scheduler Work)."""
        if seconds < 0:
            raise ValueError("cannot charge negative CPU time")
        self._cost_accumulator += seconds

    def drain_cost(self) -> float:
        cost, self._cost_accumulator = self._cost_accumulator, 0.0
        return cost

    # ------------------------------------------------------------ runtime hooks

    def receive_push(self, item: Any, port: str = "in") -> None:
        """Entry point for a push arriving at ``port``.

        Multi-input components (tees) override this; linear consumers get
        the default dispatch to :meth:`push`.
        """
        push = getattr(self, "push", None)
        if push is None:
            raise PortError(f"{self.name!r} cannot receive a push")
        self.stats["items_in"] += 1
        push(item)

    def serve_pull(self, port: str = "out") -> Any:
        """Entry point for a pull arriving at ``port``.

        Multi-output components (activity routers) override this; linear
        producers get the default dispatch to :meth:`pull`.
        """
        pull = getattr(self, "pull", None)
        if pull is None:
            raise PortError(f"{self.name!r} cannot serve a pull")
        item = pull()
        if not ev.is_eos(item) and not is_nil(item):
            self.stats["items_out"] += 1
        return item

    # ------------------------------------------------------------ sugar

    def __rshift__(self, other) -> "Pipeline":
        from repro.core.composition import Pipeline

        return Pipeline.join(self, other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"

    # ------------------------------------------------------------ lifecycle

    def on_attach(self, context: Any) -> None:
        """Called by the runtime when the pipeline is set up."""

    def on_detach(self) -> None:
        """Called by the runtime when the pipeline shuts down."""


def linear_chain(components: Iterable[Component]) -> list[Component]:
    """Validate that components form a connected linear chain and return it
    in flow order (used by tests and simple tools)."""
    ordered = list(components)
    for left, right in zip(ordered, ordered[1:]):
        if left.out_port.peer is None or left.out_port.peer.component is not right:
            raise PortError(
                f"{left.name!r} is not connected to {right.name!r}"
            )
    return ordered
