"""Control events (paper section 2.2).

Besides data items, Infopipe components exchange *control events*: local
interaction between adjacent components (a display telling the resizer about
a new window size, a sink releasing a decoder's shared reference frame) and
global broadcast events (user commands such as START and STOP delivered
"to potentially many components" through an event service).

Control events are delivered with higher priority than data processing
(:data:`EVENT_PRIORITY`), are queued while a component's data-processing
function is running, and can be delivered while a component's thread is
blocked in a push or pull — the runtime (:mod:`repro.runtime`) implements
those guarantees; this module defines the vocabulary.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import RuntimeFault
from repro.mbt.constraints import Constraint

#: Message-constraint priority of control events; data uses priority 0, so
#: events overtake queued data ("their handlers are executed with higher
#: priority than potentially long-running data processing").
EVENT_PRIORITY = 10

#: Constraint attached to every event message.
EVENT_CONSTRAINT = Constraint(priority=EVENT_PRIORITY)


class EventScope(enum.Enum):
    """How far an event travels."""

    #: To every component of the pipeline (user commands: START, STOP, ...).
    BROADCAST = "broadcast"
    #: To the component immediately upstream of the sender.
    UPSTREAM = "upstream"
    #: To the component immediately downstream of the sender.
    DOWNSTREAM = "downstream"
    #: To one named component.
    DIRECT = "direct"


_event_ids = itertools.count(1)


@dataclass(slots=True)
class Event:
    """A control event."""

    kind: str
    payload: Any = None
    source: str = ""
    scope: EventScope = EventScope.BROADCAST
    target: str | None = None
    event_id: int = field(default_factory=lambda: next(_event_ids))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.target if self.target else self.scope.value
        return f"<Event {self.kind!r} from={self.source or '?'} to={where}>"


# -- standard event kinds ----------------------------------------------------

START = "start"
STOP = "stop"
PAUSE = "pause"
RESUME = "resume"
FLUSH = "flush"
QOS_REPORT = "qos-report"
WINDOW_RESIZE = "window-resize"
FRAME_RELEASE = "frame-release"
SET_DROP_LEVEL = "set-drop-level"
SET_RATE = "set-rate"


# -- end of stream ------------------------------------------------------------


class _Eos:
    """Singleton end-of-stream marker that flows through the pipeline."""

    _instance: "_Eos | None" = None

    def __new__(cls) -> "_Eos":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "EOS"


#: End-of-stream marker: a finite source emits it once; the runtime forwards
#: it through every stage (without invoking user data functions) and stops
#: the affected pumps.
EOS = _Eos()


def is_eos(item: Any) -> bool:
    return item is EOS


# -- event service ------------------------------------------------------------


class EventService:
    """Distributes control events to registered receivers.

    Receivers are registered per component name with a delivery function;
    the runtime registers one that posts a prioritized message to the
    component's owning thread, while unit tests may register synchronous
    callbacks.  Remote pipelines bridge broadcasts across nodes by
    registering a relay receiver (see :mod:`repro.net.remote`).
    """

    def __init__(self):
        self._receivers: dict[str, Callable[[Event], None]] = {}
        self._relays: list[Callable[[Event], None]] = []
        #: Every event that passed through, for inspection by tests.
        self.history: list[Event] = []

    def register(self, name: str, deliver: Callable[[Event], None]) -> None:
        if name in self._receivers:
            raise RuntimeFault(f"duplicate event receiver {name!r}")
        self._receivers[name] = deliver

    def unregister(self, name: str) -> None:
        self._receivers.pop(name, None)

    def add_relay(self, relay: Callable[[Event], None]) -> None:
        """Relays receive every broadcast (used for cross-node delivery)."""
        self._relays.append(relay)

    @property
    def receivers(self) -> list[str]:
        return list(self._receivers)

    def broadcast(self, event: Event, relay: bool = True) -> None:
        """Deliver a broadcast event to every receiver (except its source)."""
        self.history.append(event)
        for name, deliver in list(self._receivers.items()):
            if name == event.source:
                continue
            deliver(event)
        if relay:
            for forward in self._relays:
                forward(event)

    def send_to(self, name: str, event: Event) -> None:
        """Deliver an event to one named receiver."""
        deliver = self._receivers.get(name)
        if deliver is None:
            raise RuntimeFault(f"no event receiver named {name!r}")
        self.history.append(event)
        deliver(event)
