"""Unique, human-readable names for components and threads."""

from __future__ import annotations

import itertools
import re
from collections import defaultdict

_counters: defaultdict[str, itertools.count] = defaultdict(lambda: itertools.count(1))


def fresh_name(prefix: str) -> str:
    """Return a unique name like ``"mpeg-decoder-2"``.

    Prefixes are normalized from CamelCase class names to kebab-case, so
    ``MpegDecoder`` yields ``mpeg-decoder-1``, ``mpeg-decoder-2``, ...
    """
    slug = camel_to_kebab(prefix)
    return f"{slug}-{next(_counters[slug])}"


def camel_to_kebab(name: str) -> str:
    """``"MpegFileSource"`` -> ``"mpeg-file-source"``."""
    step = re.sub(r"(.)([A-Z][a-z]+)", r"\1-\2", name)
    step = re.sub(r"([a-z0-9])([A-Z])", r"\1-\2", step)
    return step.replace("_", "-").lower()


def reset_counters() -> None:
    """Forget all counters (used by tests for stable names)."""
    _counters.clear()
