"""Activity styles for pipeline components (paper section 3.3).

"Altogether, there are four styles of components.  Active object
implementations provide a thread-like main function.  Passive objects are
consumers implementing push, producers implementing pull, or are based on a
conversion function."

* :class:`Consumer` — override ``push(item)``; emit downstream with
  ``self.put(item)`` (zero or more times per push).
* :class:`Producer` — override ``pull() -> item``; obtain upstream items
  with ``self.get()`` (zero or more times per pull).
* :class:`FunctionComponent` — override ``convert(item) -> item``; exactly
  one output per input, usable in either mode with trivial glue.
* :class:`ActiveComponent` — override ``run()`` as a generator whose
  suspension points are ``yield self.pull()`` and ``yield self.push(item)``
  — the Python rendering of the paper's free-form main loop.  Components
  written for the OS-thread backend instead override ``run_blocking(api)``
  and make genuinely blocking ``api.pull()`` / ``api.push(item)`` calls.

Whichever style a component is written in, the glue layer
(:mod:`repro.core.glue`) adapts it to the push or pull mode its position in
the pipeline requires, so "existing code can be reused regardless of its
activity model".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.core.component import Component, Role
from repro.errors import RuntimeFault


class Style(enum.Enum):
    ACTIVE = "active"
    CONSUMER = "consumer"
    PRODUCER = "producer"
    FUNCTION = "function"

    def __str__(self) -> str:
        return self.value


class EndOfStream(Exception):
    """Raised by ``get()`` / resumed into ``yield self.pull()`` when the
    upstream flow has ended.  Active components may catch it to flush
    internal state; if it escapes, the runtime forwards EOS downstream."""


# -- requests yielded by active components ------------------------------------


@dataclass(slots=True)
class PullOp:
    """Request one item from the named in-port."""

    port: str = "in"


@dataclass(slots=True)
class PushOp:
    """Deliver one item to the named out-port."""

    item: Any = None
    port: str = "out"


# -- the four styles -----------------------------------------------------------


class _LinearComponent(Component):
    """Shared helper: a component with one ``in`` and one ``out`` port whose
    connections share a single mode (the α → α rule)."""

    mode_links = (("in", "out"),)

    def __init__(self, name: str | None = None):
        super().__init__(name)
        self.add_in_port()
        self.add_out_port()


class Consumer(_LinearComponent):
    """Passive component implementing ``push``."""

    style = Style.CONSUMER
    role = Role.TRANSFORM

    def push(self, item: Any) -> None:
        raise NotImplementedError

    def put(self, item: Any, port: str = "out") -> None:
        """Emit ``item`` downstream (valid only while the pipeline runs)."""
        emit = self._emitters.get(port)
        if emit is None:
            raise RuntimeFault(
                f"{self.name!r}: put() on port {port!r} outside a running "
                "pipeline"
            )
        self.stats["items_out"] += 1
        emit(item)


class Producer(_LinearComponent):
    """Passive component implementing ``pull``.

    .. note::
       Under the default generator backend, when a Producer is used in push
       mode its ``pull()`` may be *re-executed from the start* until enough
       input has arrived (see :mod:`repro.runtime.bridge`).  ``pull()``
       should therefore be deterministic and free of external side effects
       until it completes — the natural shape for passive producers.  The
       OS-thread backend has no such restriction.
    """

    style = Style.PRODUCER
    role = Role.TRANSFORM

    def pull(self) -> Any:
        raise NotImplementedError

    def get(self, port: str = "in") -> Any:
        """Obtain the next upstream item (valid only while running)."""
        intake = self._intakes.get(port)
        if intake is None:
            raise RuntimeFault(
                f"{self.name!r}: get() on port {port!r} outside a running "
                "pipeline"
            )
        return intake()


class FunctionComponent(_LinearComponent):
    """Passive one-to-one conversion function.

    The glue code for the respective modes is exactly the paper's:
    ``push(x) -> next.push(fct(x))`` and ``pull() -> fct(prev.pull())``.
    """

    style = Style.FUNCTION
    role = Role.TRANSFORM

    def convert(self, item: Any) -> Any:
        raise NotImplementedError

    def convert_many(self, items: list) -> list:
        """Vectorized conversion used by the batched data plane.

        Must behave exactly like ``[convert(x) for x in items]`` — one
        output per input, in order — which is what this default does.
        Override it only to amortize per-call overhead (e.g. one codec
        invocation for a whole run); the 1:1 in-order contract is what
        keeps batch runs per-item observable.
        """
        convert = self.convert
        return [convert(item) for item in items]


class ActiveComponent(_LinearComponent):
    """Component with a thread-like main function.

    Generator style (default backend)::

        class Doubler(ActiveComponent):
            def run(self):
                while True:
                    x = yield self.pull()
                    yield self.push(x)
                    yield self.push(x)

    Blocking style (OS-thread backend)::

        class Doubler(ActiveComponent):
            def run_blocking(self, api):
                while True:
                    x = api.pull()
                    api.push(x)
                    api.push(x)
    """

    style = Style.ACTIVE
    role = Role.TRANSFORM

    def run(self):
        raise NotImplementedError(
            f"{type(self).__name__} must override run() "
            "(or run_blocking() for the OS-thread backend)"
        )

    def run_blocking(self, api) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} must override run_blocking() "
            "to be used with the OS-thread backend"
        )

    def has_blocking_body(self) -> bool:
        return type(self).run_blocking is not ActiveComponent.run_blocking

    def has_generator_body(self) -> bool:
        return type(self).run is not ActiveComponent.run

    # -- requests usable inside run() ------------------------------------

    def pull(self, port: str = "in") -> PullOp:
        return PullOp(port)

    def push(self, item: Any, port: str = "out") -> PushOp:
        return PushOp(item, port)
