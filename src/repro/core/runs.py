"""Columnar runs: batch-walker runs stored column-wise.

The batched data plane (docs/RUNTIME.md §11) moves *runs* — ordered
sequences of data items.  A plain Python list of per-item objects is the
default run representation; a :class:`ColumnarRun` is the alternative:
one object holding parallel arrays (plus, for media, a single contiguous
payload region) that *behaves* like a pure-data list of items.

The contract a ColumnarRun must honour so every existing walker keeps
working unchanged:

* ``len(run)`` is the item count;
* ``run[i]`` materializes item ``i`` on demand (negative indices work,
  and the result is never EOS/NIL — columnar runs are pure data, so the
  walkers' ``run[-1] is EOS`` probes are trivially False);
* ``run[a:b]`` returns a columnar sub-run sharing the underlying columns
  (gates use this to retry a partially accepted run);
* iteration materializes items in order — the per-item fallback every
  non-vectorized component relies on.

Because columnar runs never carry EOS, a batch-aware source returns its
final short run of data and delivers ``[EOS]`` as its own run on the next
cycle (both legal under the run conventions).

This module is dependency-free so the runtime can type-check runs without
importing :mod:`repro.media`.
"""

from __future__ import annotations

from typing import Any


class ColumnarRun:
    """Marker base class for columnar run representations."""

    __slots__ = ()

    #: Class-level marker probed by the walkers (cheaper than isinstance
    #: against a base class that media types may not want to inherit).
    columnar = True

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __getitem__(self, index):  # pragma: no cover - abstract
        raise NotImplementedError

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]


def is_columnar(run: Any) -> bool:
    """True when ``run`` is a columnar run (never true for lists)."""
    return getattr(run, "columnar", False) is True
