"""Information items.

The framework transports arbitrary Python objects as information items.  Two
distinguished sentinels exist:

* :data:`NIL` — returned by a non-blocking pull on an empty buffer whose
  empty-policy is *nil* (paper section 2.3: "if a buffer is empty, a pull
  operation can either be blocked or return a nil item").
* :data:`~repro.core.events.EOS` — an end-of-stream marker that flows
  through a pipeline after a finite source is exhausted (defined alongside
  the other control machinery in :mod:`repro.core.events`).
"""

from __future__ import annotations

from typing import Any


class _Nil:
    """Singleton nil item."""

    _instance: "_Nil | None" = None

    def __new__(cls) -> "_Nil":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NIL"

    def __bool__(self) -> bool:
        return False


#: The nil item.
NIL = _Nil()


def is_nil(item: Any) -> bool:
    """True when ``item`` is the nil sentinel."""
    return item is NIL
