"""Port polarity and interaction mode.

Paper, section 2.3: "Activity is represented in the Typespec by assigning
each port a positive or negative polarity.  A positive out-port will make
calls to push, while a negative out-port has the ability to receive a pull.
Correspondingly, a positive in-port will make calls to pull, while a
negative in-port represents the willingness to receive a push.  With this
representation, ports with opposite polarity may be connected, but an
attempt to connect two ports with the same polarity is an error."

Polymorphic components (filters and filter chains) carry the polymorphic
polarity "α → α": once one end is connected to a fixed-polarity port, the
other end acquires an *induced* polarity.

Internally the framework reasons in terms of the **mode** of a connection —
PUSH (items travel by push calls) or PULL (by pull calls) — because a
connection always has exactly one mode, and the polarity of each port
follows mechanically from (direction, mode):

====================  ==========  ==========
port                  PUSH mode   PULL mode
====================  ==========  ==========
out-port              positive    negative
in-port               negative    positive
====================  ==========  ==========
"""

from __future__ import annotations

import enum


class Polarity(enum.Enum):
    """Polarity of a port; POLY is the paper's α."""

    POSITIVE = "+"
    NEGATIVE = "-"
    POLY = "α"

    def __str__(self) -> str:
        return self.value

    @property
    def fixed(self) -> bool:
        return self is not Polarity.POLY

    def opposite(self) -> "Polarity":
        if self is Polarity.POSITIVE:
            return Polarity.NEGATIVE
        if self is Polarity.NEGATIVE:
            return Polarity.POSITIVE
        return Polarity.POLY


class Direction(enum.Enum):
    IN = "in"
    OUT = "out"


class Mode(enum.Enum):
    """The interaction mode of a connection (or of a port on it)."""

    PUSH = "push"
    PULL = "pull"

    def __str__(self) -> str:
        return self.value


def polarity_for(direction: Direction, mode: Mode | None) -> Polarity:
    """Polarity of a port with the given direction on a connection of the
    given mode (POLY when the mode is still unresolved)."""
    if mode is None:
        return Polarity.POLY
    if direction is Direction.OUT:
        return Polarity.POSITIVE if mode is Mode.PUSH else Polarity.NEGATIVE
    return Polarity.NEGATIVE if mode is Mode.PUSH else Polarity.POSITIVE


def mode_for(direction: Direction, polarity: Polarity) -> Mode | None:
    """Inverse of :func:`polarity_for`."""
    if not polarity.fixed:
        return None
    if direction is Direction.OUT:
        return Mode.PUSH if polarity is Polarity.POSITIVE else Mode.PULL
    return Mode.PUSH if polarity is Polarity.NEGATIVE else Mode.PULL


def compatible(out_polarity: Polarity, in_polarity: Polarity) -> bool:
    """May an out-port with ``out_polarity`` connect to an in-port with
    ``in_polarity``?  Fixed polarities must be opposite; POLY matches all."""
    if not out_polarity.fixed or not in_polarity.fixed:
        return True
    return out_polarity is not in_polarity
