"""Automatic thread and coroutine allocation (sections 3.3 and 4).

Given a composed pipeline, :func:`allocate` determines — purely from the
configuration, with no help from the application programmer — which
components share a thread and which need coroutines:

* The pipeline is cut at **passive boundaries**: buffers, passive sources
  and passive sinks ("Each pump has an associated thread that calls all
  other pipeline stages up to the next buffer up- or downstream").
* Each resulting **section** must contain exactly one **activity origin** —
  a pump, or an active (self-timed) source or sink.
* Components between the upstream boundary and the origin operate in *pull*
  mode; components between the origin and the downstream boundary in *push*
  mode (Figure 2).
* A component is **called directly** when its activity style matches its
  mode — consumers and functions in push mode, producers and functions in
  pull mode — and is otherwise run as a **coroutine** in the pump's
  coroutine set (Figure 9): active objects always; consumers in pull mode
  and producers in push mode via the generated wrapper loops of Figure 7.

The resulting :class:`AllocationPlan` is what the runtime executes, and its
coroutine counts are the quantity Figure 9 reports (the pump's own thread
counts as one member of the set: configurations a–c need one, d/g/h two,
e/f three).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.core.component import Component, Port, Role
from repro.core.composition import Pipeline
from repro.core.polarity import Mode
from repro.core.styles import Style
from repro.errors import AllocationError

__all__ = [
    "AllocationPlan",
    "BoundaryRef",
    "FlowNode",
    "SectionPlan",
    "StagePlan",
    "allocate",
    "needs_coroutine",
]


def needs_coroutine(style: Style | None, mode: Mode) -> bool:
    """Does a component of the given style need a coroutine in this mode?

    ======== ===== =====
    style    push  pull
    ======== ===== =====
    function no    no
    consumer no    yes
    producer yes   no
    active   yes   yes
    ======== ===== =====
    """
    if style is Style.FUNCTION:
        return False
    if style is Style.CONSUMER:
        return mode is Mode.PULL
    if style is Style.PRODUCER:
        return mode is Mode.PUSH
    if style is Style.ACTIVE:
        return True
    raise AllocationError(f"component style {style!r} has no activity rule")


@dataclass(slots=True)
class BoundaryRef:
    """A passive boundary as seen from inside a section.

    ``port`` is the boundary component's port facing the section (the
    buffer's out-port on a pull side, its in-port on a push side).
    """

    component: Component
    port: Port


@dataclass(slots=True)
class FlowNode:
    """One in-section component, with the continuation beyond each of the
    ports the flow proceeds through (a tree, since tees branch).

    ``entry_port`` is the component's own port facing the activity origin —
    the out-port we pull from on a pull side, the in-port we push into on a
    push side.
    """

    component: Component
    mode: Mode
    entry_port: str = ""
    branches: dict[str, Union["FlowNode", BoundaryRef]] = field(
        default_factory=dict
    )

    def walk(self):
        yield self
        for child in self.branches.values():
            if isinstance(child, FlowNode):
                yield from child.walk()


@dataclass(slots=True)
class StagePlan:
    """Placement decision for one component within one section."""

    component: Component
    mode: Mode
    coroutine: bool
    shared: bool = False

    @property
    def style(self) -> Style | None:
        return self.component.style


@dataclass
class SectionPlan:
    """Everything one pump thread runs."""

    origin: Component
    pull_root: Union[FlowNode, BoundaryRef, None]
    push_root: Union[FlowNode, BoundaryRef, None]
    stages: list[StagePlan]

    @property
    def coroutine_members(self) -> list[Component]:
        return [s.component for s in self.stages if s.coroutine]

    @property
    def coroutine_count(self) -> int:
        """Size of the section's coroutine set, counting the pump's thread
        itself (the paper's Figure 9 counting)."""
        return 1 + len(self.coroutine_members)

    @property
    def direct_members(self) -> list[Component]:
        return [s.component for s in self.stages if not s.coroutine]

    def stage_for(self, component: Component) -> StagePlan:
        for stage in self.stages:
            if stage.component is component:
                return stage
        raise AllocationError(
            f"{component.name!r} is not a stage of section "
            f"{self.origin.name!r}"
        )

    def describe(self) -> dict:
        return {
            "origin": self.origin.name,
            "coroutines": self.coroutine_count,
            "stages": [
                {
                    "component": s.component.name,
                    "style": str(s.style) if s.style else None,
                    "mode": str(s.mode),
                    "placement": "coroutine" if s.coroutine else "direct",
                    "shared": s.shared,
                }
                for s in self.stages
            ],
        }


@dataclass
class AllocationPlan:
    """The full thread/coroutine assignment for a pipeline."""

    pipeline: Pipeline
    sections: list[SectionPlan]
    shared_components: set[Component]

    @property
    def total_threads(self) -> int:
        """User-level threads the runtime will create (one per coroutine-set
        member, including each pump's own thread)."""
        return sum(s.coroutine_count for s in self.sections)

    def section_for(self, component: Component) -> SectionPlan:
        for section in self.sections:
            if section.origin is component or any(
                stage.component is component for stage in section.stages
            ):
                return section
        raise AllocationError(f"{component.name!r} is not in any section")

    def describe(self) -> list[dict]:
        return [section.describe() for section in self.sections]

    def report(self) -> str:
        lines = []
        for section in self.sections:
            lines.append(
                f"section {section.origin.name}: "
                f"{section.coroutine_count} coroutine(s)"
            )
            for stage in section.stages:
                placement = "coroutine" if stage.coroutine else "direct call"
                shared = " [shared]" if stage.shared else ""
                lines.append(
                    f"  {stage.component.name} ({stage.style}, "
                    f"{stage.mode} mode) -> {placement}{shared}"
                )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Allocation
# ---------------------------------------------------------------------------


def _is_boundary(component: Component) -> bool:
    if component.role is Role.BUFFER:
        return True
    if component.role in (Role.SOURCE, Role.SINK):
        return not getattr(component, "is_activity_origin", False)
    return False


def _is_origin(component: Component) -> bool:
    if component.role is Role.PUMP:
        return True
    return bool(getattr(component, "is_activity_origin", False))


def allocate(pipe: Pipeline) -> AllocationPlan:
    """Compute the thread/coroutine assignment for a composed pipeline."""
    if not pipe.is_complete():
        free = [
            p.qualified_name()
            for p in pipe.free_in_ports() + pipe.free_out_ports()
        ]
        raise AllocationError(
            f"pipeline is incomplete; unconnected ports: {', '.join(free)}"
        )
    # Re-derive typespecs: validates acyclicity and flow compatibility.
    pipe.derive_typespecs()

    origins = [c for c in pipe.components if _is_origin(c)]
    if not origins:
        raise AllocationError(
            "pipeline has no pump or active endpoint; nothing would ever flow"
        )

    visits: dict[Component, int] = {}
    sections: list[SectionPlan] = []
    for origin in origins:
        sections.append(_build_section(origin, visits))

    shared = {component for component, count in visits.items() if count > 1}
    for section in sections:
        for stage in section.stages:
            if stage.component in shared:
                stage.shared = True
                if stage.coroutine:
                    raise AllocationError(
                        f"{stage.component.name!r} is shared between pipeline "
                        "sections but its activity style requires a "
                        "coroutine; only directly-callable styles (consumer, "
                        "function) may sit downstream of a merge or "
                        "upstream of an activity router"
                    )

    _check_full_coverage(pipe, sections)
    _check_event_operability(pipe)
    return AllocationPlan(pipeline=pipe, sections=sections, shared_components=shared)


def _build_section(origin: Component, visits: dict[Component, int]) -> SectionPlan:
    stages: list[StagePlan] = []

    def visit(component: Component) -> None:
        visits[component] = visits.get(component, 0) + 1

    def explore(port: Port, mode: Mode, via: str) -> Union[FlowNode, BoundaryRef]:
        """Explore the section beyond ``port`` (a port of the *next*
        component: its out-port when pulling upstream, its in-port when
        pushing downstream)."""
        component = port.component
        if _is_boundary(component):
            _require_mode(port, mode)
            return BoundaryRef(component, port)
        if _is_origin(component):
            raise AllocationError(
                f"section of {origin.name!r} reaches a second activity "
                f"origin {component.name!r} with no buffer in between; two "
                "pumps cannot drive the same pipeline section"
            )
        _require_mode(port, mode)
        visit(component)
        if component.style is None:
            raise AllocationError(
                f"{component.name!r} (role {component.role.value}) has no "
                "activity style and cannot be placed in a section"
            )
        stages.append(
            StagePlan(
                component=component,
                mode=mode,
                coroutine=needs_coroutine(component.style, mode),
            )
        )
        node = FlowNode(component=component, mode=mode, entry_port=port.name)
        if mode is Mode.PULL:
            # Continue upstream through every in-port.
            for in_port in component.in_ports():
                node.branches[in_port.name] = explore(
                    in_port.peer, Mode.PULL, via=in_port.name
                )
        else:
            # Continue downstream through every out-port.
            for out_port in component.out_ports():
                node.branches[out_port.name] = explore(
                    out_port.peer, Mode.PUSH, via=out_port.name
                )
        return node

    pull_root: Union[FlowNode, BoundaryRef, None] = None
    push_root: Union[FlowNode, BoundaryRef, None] = None
    if origin.in_ports():
        in_port = origin.in_ports()[0]
        origin.fix_port_mode(in_port.name, Mode.PULL)
        pull_root = explore(in_port.peer, Mode.PULL, via=in_port.name)
    if origin.out_ports():
        out_port = origin.out_ports()[0]
        origin.fix_port_mode(out_port.name, Mode.PUSH)
        push_root = explore(out_port.peer, Mode.PUSH, via=out_port.name)

    return SectionPlan(
        origin=origin, pull_root=pull_root, push_root=push_root, stages=stages
    )


def _require_mode(port: Port, mode: Mode) -> None:
    """Fix the mode of the connection at ``port``; PolarityError (a
    CompositionError) propagates when the component's declared polarity
    forbids it."""
    if port.mode is None:
        port.component.fix_port_mode(port.name, mode)
    elif port.mode is not mode:
        from repro.errors import PolarityError

        raise PolarityError(
            f"{port.qualified_name()} must operate in {mode} mode here, but "
            f"its polarity fixes it to {port.mode} mode"
        )


def _check_full_coverage(pipe: Pipeline, sections: list[SectionPlan]) -> None:
    covered: set[Component] = set()
    for section in sections:
        covered.add(section.origin)
        covered.update(stage.component for stage in section.stages)
    orphans = [
        c.name
        for c in pipe.components
        if c not in covered and not _is_boundary(c)
    ]
    if orphans:
        raise AllocationError(
            "no pump drives these components (add a pump between the "
            f"surrounding buffers/endpoints): {', '.join(sorted(orphans))}"
        )


def _check_event_operability(pipe: Pipeline) -> None:
    """Section 2.3: a component that sends control events to its neighbours
    needs someone on that side able to react, or the pipeline is not
    operational."""
    for component in pipe.components:
        if component.events_sent_downstream:
            handled = _collect_handled(component, downstream=True)
            missing = set(component.events_sent_downstream) - handled
            if missing:
                raise AllocationError(
                    f"{component.name!r} sends control event(s) "
                    f"{sorted(missing)} downstream but no downstream "
                    "component handles them"
                )
        if component.events_sent_upstream:
            handled = _collect_handled(component, downstream=False)
            missing = set(component.events_sent_upstream) - handled
            if missing:
                raise AllocationError(
                    f"{component.name!r} sends control event(s) "
                    f"{sorted(missing)} upstream but no upstream "
                    "component handles them"
                )


def _collect_handled(start: Component, downstream: bool) -> set[str]:
    handled: set[str] = set()
    stack = [start]
    seen = {start}
    while stack:
        component = stack.pop()
        ports = component.out_ports() if downstream else component.in_ports()
        for port in ports:
            if port.peer is None:
                continue
            neighbour = port.peer.component
            if neighbour in seen:
                continue
            seen.add(neighbour)
            handled.update(neighbour.events_handled)
            stack.append(neighbour)
    return handled
