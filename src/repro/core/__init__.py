"""The Infopipe abstraction (sections 2 and 3 of the paper).

This package defines what an Infopipe *is* — components with typed, polarized
ports, composed into pipelines with the ``>>`` operator — and how the
middleware decides, from the high-level configuration alone, which parts of a
pipeline need threads or coroutines (:mod:`repro.core.glue`).

Execution lives in :mod:`repro.runtime`; ready-made components live in
:mod:`repro.components`.
"""

from repro.core.component import Component, Port, Role
from repro.core.composition import Pipeline, connect, pipeline
from repro.core.events import (
    EOS,
    EVENT_PRIORITY,
    Event,
    EventScope,
    EventService,
    is_eos,
)
from repro.core.glue import AllocationPlan, SectionPlan, StagePlan, allocate
from repro.core.items import NIL, is_nil
from repro.core.polarity import Mode, Polarity
from repro.core.styles import (
    ActiveComponent,
    Consumer,
    EndOfStream,
    FunctionComponent,
    Producer,
    PullOp,
    PushOp,
    Style,
)
from repro.core.typespec import ANY, Choices, Interval, Typespec, props

__all__ = [
    "ANY",
    "ActiveComponent",
    "AllocationPlan",
    "Choices",
    "Component",
    "Consumer",
    "EOS",
    "EVENT_PRIORITY",
    "EndOfStream",
    "Event",
    "EventScope",
    "EventService",
    "FunctionComponent",
    "Interval",
    "Mode",
    "NIL",
    "Pipeline",
    "Polarity",
    "Port",
    "Producer",
    "PullOp",
    "PushOp",
    "Role",
    "SectionPlan",
    "StagePlan",
    "Style",
    "Typespec",
    "allocate",
    "connect",
    "is_eos",
    "is_nil",
    "pipeline",
    "props",
]
