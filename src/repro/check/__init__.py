"""Deterministic simulation checking: explore, detect, assert, inject.

The middleware executes entirely on a virtual clock, which makes every
run a deterministic simulation — and a deterministic simulation can be
*checked*: re-run under many legal schedules, watched for deadlock,
audited for flow conservation, and stressed with injected faults.  This
package is that toolkit:

* :mod:`~repro.check.explorer` — run one program under N seeded
  scheduling perturbations; failing seeds come with a minimized,
  replayable repro.
* :mod:`~repro.check.deadlock` — wait-for-graph cycle/hang/livelock
  detection with human-readable reports.
* :mod:`~repro.check.invariants` — flow conservation, declared-loss
  accounting, and FIFO assertions over pipeline stats.
* :mod:`~repro.check.faults` — seeded plans of thread crashes, message
  drop/delay/reorder, and link flaps.
* :mod:`~repro.check.refine` — mechanized refinement: certify that a
  transformed pipeline's sink streams are observably identical to its
  original's, with machine-readable certificates and minimized,
  replayable counterexamples.

All of it rides hook points that cost a single ``is None`` check when
unused, so production runs (and the golden traces) are unaffected.
"""

from repro.check.deadlock import (
    DeadlockReport,
    assert_no_deadlock,
    blocked_waits,
    describe_match,
    detect,
    find_cycles,
    receive_from,
    run_watched,
    waitfor_graph,
)
from repro.check.explorer import (
    ExplorationResult,
    ReplayChooser,
    SeededChooser,
    SeedRun,
    explore,
    minimize_failure,
    replay,
    run_once,
    trace_hash,
)
from repro.check.faults import (
    CrashThread,
    FaultPlan,
    LinkFlap,
    MessageFaults,
    crash_one_pump,
    message_chaos,
)
from repro.check.invariants import (
    FlowIssue,
    FlowReport,
    SinkTaps,
    assert_fifo,
    assert_flow,
    assert_no_duplicates,
    channel_name,
    check_conservation,
    check_flow,
    check_network,
    declare_lossy,
    install_sink_taps,
    is_lossy,
    loss_reason,
    record_tap,
)
from repro.check.refine import (
    Divergence,
    PipelineUnderTest,
    Projection,
    RefinementCertificate,
    WitnessRun,
    certify_restructure,
    check_refinement,
    lossy_channels,
    replay_certificate,
)
from repro.errors import InjectedFault, InvariantViolation, RefinementViolation

__all__ = [
    "CrashThread",
    "DeadlockReport",
    "Divergence",
    "ExplorationResult",
    "FaultPlan",
    "FlowIssue",
    "FlowReport",
    "InjectedFault",
    "InvariantViolation",
    "LinkFlap",
    "MessageFaults",
    "PipelineUnderTest",
    "Projection",
    "RefinementCertificate",
    "RefinementViolation",
    "ReplayChooser",
    "SeedRun",
    "SeededChooser",
    "SinkTaps",
    "WitnessRun",
    "assert_fifo",
    "assert_flow",
    "assert_no_deadlock",
    "assert_no_duplicates",
    "blocked_waits",
    "certify_restructure",
    "channel_name",
    "check_conservation",
    "check_flow",
    "check_network",
    "check_refinement",
    "crash_one_pump",
    "declare_lossy",
    "describe_match",
    "detect",
    "explore",
    "find_cycles",
    "install_sink_taps",
    "is_lossy",
    "loss_reason",
    "lossy_channels",
    "message_chaos",
    "minimize_failure",
    "receive_from",
    "record_tap",
    "replay",
    "replay_certificate",
    "run_once",
    "run_watched",
    "trace_hash",
    "waitfor_graph",
]
