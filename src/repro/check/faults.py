"""Fault injection: crashes, message faults and link flaps, one plan.

Thread transparency also means *failure* transparency has limits worth
testing: what happens to a pipeline when a pump thread dies mid-flow,
when scheduler messages are dropped, delayed or reordered, or when the
network link under a netpipe flaps?  A :class:`FaultPlan` bundles all
three fault families behind one seeded RNG and arms them onto a
scheduler (and optionally a network) through the hook points that are
inert when unused:

* thread crashes ride :meth:`repro.mbt.scheduler.Scheduler.inject_crash`
  via a timer, raising :class:`~repro.errors.InjectedFault` into the
  victim at a virtual time;
* message faults ride
  :attr:`~repro.mbt.scheduler.Scheduler.delivery_interceptor` — each
  matching message is independently dropped or delayed (delaying a
  message past its peers reorders delivery);
* link flaps ride :meth:`repro.net.network.Network.take_link_down` /
  ``bring_link_up`` timers — every packet admitted while down is lost.

Plans are plain data: the same plan + the same seed reproduces the same
faults, so a fault schedule that found a bug *is* its regression test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from repro.mbt.message import Message
from repro.mbt.scheduler import Scheduler


@dataclass(frozen=True)
class CrashThread:
    """Crash one thread at a virtual time.

    ``thread`` is the scheduler thread name (pump threads are named
    ``pump:<origin>``, coroutines ``coro:<component>``).  A crash against
    an already-terminated or never-spawned thread is a silent no-op — a
    plan outliving its victim is not an error.
    """

    at: float
    thread: str


@dataclass(frozen=True)
class MessageFaults:
    """Random per-message faults applied at delivery time.

    Each message matching the ``kinds``/``targets`` filters (None =
    match all) is independently dropped with probability ``drop_rate``,
    else delayed with probability ``delay_rate`` by a uniform time in
    ``(0, max_delay]``.  Delays reorder: a delayed message is re-posted
    behind anything delivered in the meantime.
    """

    drop_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay: float = 0.01
    kinds: frozenset[str] | None = None
    targets: frozenset[str] | None = None

    def matches(self, message: Message) -> bool:
        if self.kinds is not None and message.kind not in self.kinds:
            return False
        if self.targets is not None and message.target not in self.targets:
            return False
        return True


@dataclass(frozen=True)
class LinkFlap:
    """Take a directed link down at ``down_at``, back up at ``up_at``."""

    src: str
    dst: str
    down_at: float
    up_at: float

    def __post_init__(self):
        if self.up_at <= self.down_at:
            raise ValueError("link must come back up after it goes down")


@dataclass
class FaultPlan:
    """A seeded, replayable bundle of faults for one run.

    Build the program, then ``plan.arm(scheduler, network)`` *before*
    running; timers and the delivery interceptor do the rest.  Counters
    (``crashes_fired``, plus the scheduler's ``messages_dropped``) let
    tests assert the plan actually bit.
    """

    seed: int = 0
    crashes: tuple[CrashThread, ...] = ()
    messages: MessageFaults | None = None
    flaps: tuple[LinkFlap, ...] = ()

    crashes_fired: list[str] = field(default_factory=list, compare=False)
    messages_delayed: int = field(default=0, compare=False)

    def arm(self, scheduler: Scheduler, network=None) -> "FaultPlan":
        rng = random.Random(self.seed)

        for crash in self.crashes:
            def fire(victim=crash.thread):
                thread = scheduler.threads.get(victim)
                if thread is None or thread.terminated:
                    return
                # Record first: under on_thread_error="raise" the injected
                # crash propagates out of inject_crash.
                self.crashes_fired.append(victim)
                scheduler.inject_crash(victim)

            scheduler.at(crash.at, fire)

        faults = self.messages
        if faults is not None:
            def intercept(message: Message):
                if not faults.matches(message):
                    return None
                roll = rng.random()
                if roll < faults.drop_rate:
                    return "drop"
                if roll < faults.drop_rate + faults.delay_rate:
                    self.messages_delayed += 1
                    return rng.random() * faults.max_delay or faults.max_delay
                return None

            if scheduler.delivery_interceptor is not None:
                raise RuntimeError(
                    "scheduler already has a delivery interceptor"
                )
            scheduler.delivery_interceptor = intercept

        if self.flaps:
            if network is None:
                raise ValueError("plan has link flaps but no network given")
            for flap in self.flaps:
                def down(f=flap):
                    network.take_link_down(f.src, f.dst)

                def up(f=flap):
                    network.bring_link_up(f.src, f.dst)

                scheduler.at(flap.down_at, down)
                scheduler.at(flap.up_at, up)
        return self


def crash_one_pump(
    engine, at: float, which: int = 0, plan_seed: int = 0
) -> FaultPlan:
    """Convenience: a plan crashing the ``which``-th pump of an engine.

    The engine must be set up (so pump drivers exist); arming happens
    immediately against its scheduler.
    """
    engine.setup()
    drivers = engine.pump_drivers
    if not drivers:
        raise ValueError("engine has no pump drivers to crash")
    victim = drivers[which % len(drivers)].thread_name
    plan = FaultPlan(seed=plan_seed, crashes=(CrashThread(at, victim),))
    return plan.arm(engine.scheduler)


def message_chaos(
    scheduler: Scheduler,
    seed: int = 0,
    drop_rate: float = 0.01,
    delay_rate: float = 0.05,
    max_delay: float = 0.005,
    kinds: Iterable[str] | None = None,
    targets: Iterable[str] | None = None,
) -> FaultPlan:
    """Convenience: arm message drop/delay chaos on a scheduler."""
    plan = FaultPlan(
        seed=seed,
        messages=MessageFaults(
            drop_rate=drop_rate,
            delay_rate=delay_rate,
            max_delay=max_delay,
            kinds=frozenset(kinds) if kinds is not None else None,
            targets=frozenset(targets) if targets is not None else None,
        ),
    )
    return plan.arm(scheduler)
