"""Mechanized refinement checking: certify "observably identical streams".

Every optimization this repository ships — batching, vectorizing,
zero-copy marshalling, netpipe splitting, live restructuring — claims the
transformed pipeline is *observably identical* to the original.  Philipps
& Rumpe's refinement rules for pipe-and-filter / information-flow
architectures give that claim a checkable form: pipeline **B refines
pipeline A** iff every behaviour of B is a behaviour of A — concretely,
every explored schedule of B yields sink sequences some witness schedule
of A reproduces, modulo declared-lossy components.

:func:`check_refinement` mechanizes exactly that over the existing
deterministic-simulation toolkit:

* both pipelines are instrumented with **sink taps**
  (:func:`repro.check.invariants.install_sink_taps` — no rewiring, the
  schedule is untouched);
* a **witness set** of A's schedules and ``>= seeds`` seeded schedules of
  B are explored through the scheduler's tie-break hook
  (:class:`~repro.check.explorer.SeededChooser`);
* per sink channel, B's **projected** stream must equal some witness
  stream exactly (conserving channels) or embed into one as an
  order-preserving **subsequence** (channels behind declared-lossy
  components, drop-counting filters, or lossy network links);
* the outcome is a machine-readable :class:`RefinementCertificate`
  (seeds, trace hashes, channel modes, projection spec, verdict) that CI
  archives next to the ``BENCH_*.json`` reports;
* on failure the violating schedule is shrunk with the explorer's ddmin
  machinery into a **replayable counterexample**: seed, minimized choice
  list, and the first divergent sink index.
"""

from __future__ import annotations

import itertools
import json
import os
import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.check.explorer import (
    ReplayChooser,
    SeededChooser,
    SeedRun,
    _minimize,
    _run_once,
)
from repro.check.invariants import (
    SinkTaps,
    install_sink_taps,
    is_lossy,
    loss_reason,
)
from repro.errors import RefinementViolation

CERTIFICATE_FORMAT = "repro-refinement-certificate/1"

#: Choice lists longer than this are elided from certificates (the seed
#: alone deterministically regenerates them).
MAX_STORED_CHOICES = 4096


# ---------------------------------------------------------------------------
# What is being compared: pipelines under test and projections
# ---------------------------------------------------------------------------


@dataclass
class PipelineUnderTest:
    """One side of a refinement check: how to build and drive it.

    ``build`` returns a fresh, fully wired but un-run program (an
    :class:`~repro.runtime.engine.Engine`, or anything with ``.pipeline``
    and ``.scheduler``) — called once per explored schedule.  ``drive``
    runs it (default: ``run_to_completion`` with a step bound, like the
    explorer).
    """

    build: Callable[[], Any]
    drive: Callable[[Any], None] | None = None
    name: str = ""

    @classmethod
    def of(cls, target, default_name: str = "") -> "PipelineUnderTest":
        """Coerce a builder callable, a microlanguage source string, or a
        ready :class:`PipelineUnderTest` into a :class:`PipelineUnderTest`."""
        if isinstance(target, PipelineUnderTest):
            return target
        if isinstance(target, str):
            return cls.from_lang(target, name=default_name)
        name = default_name or getattr(target, "__name__", "") or "pipeline"
        return cls(build=target, name=name)

    @classmethod
    def from_lang(
        cls,
        source: str,
        registry=None,
        name: str = "",
        drive: Callable[[Any], None] | None = None,
        **engine_kwargs: Any,
    ) -> "PipelineUnderTest":
        """Build the pipeline from a microlanguage description.

        ``engine_kwargs`` reach the Engine, so the one-call certification
        of a re-compiled transmission policy is::

            check_refinement(
                PipelineUnderTest.from_lang(SRC),
                PipelineUnderTest.from_lang(SRC, batch_max=32),
            )
        """
        from repro.lang.builder import engine_builder

        return cls(
            build=engine_builder(source, registry=registry, **engine_kwargs),
            drive=drive,
            name=name or "lang-pipeline",
        )


@dataclass
class Projection:
    """What part of each sink item refinement compares.

    ``default`` maps every observed item to its comparable projection
    (identity when None); ``channels`` overrides per channel — keys may be
    full channel names (``display#0``) or stems (``display``).  Channels
    in ``ignore`` are not compared at all (timing probes, debug sinks).
    """

    default: Callable[[Any], Any] | None = None
    channels: dict[str, Callable[[Any], Any]] = field(default_factory=dict)
    ignore: frozenset = frozenset()

    @classmethod
    def by_attr(cls, attr: str, **kwargs: Any) -> "Projection":
        """Project every item to one attribute (``Projection.by_attr("seq")``)."""
        def get(item, _attr=attr):
            return getattr(item, _attr)

        get.__name__ = f"attr:{attr}"
        return cls(default=get, **kwargs)

    def fn_for(self, channel: str) -> Callable[[Any], Any] | None:
        fn = self.channels.get(channel)
        if fn is None:
            fn = self.channels.get(_stem(channel))
        if fn is None:
            fn = self.default
        return fn

    def ignores(self, channel: str) -> bool:
        return channel in self.ignore or _stem(channel) in self.ignore

    def apply(self, channel: str, items: Sequence[Any]) -> list:
        fn = self.fn_for(channel)
        if fn is None:
            return list(items)
        return [fn(item) for item in items]

    def describe(self) -> dict:
        return {
            "default": _describe_fn(self.default),
            "channels": {
                channel: _describe_fn(fn)
                for channel, fn in sorted(self.channels.items())
            },
            "ignore": sorted(self.ignore),
        }


def _stem(channel: str) -> str:
    return channel.split("#", 1)[0]


def _describe_fn(fn) -> str:
    if fn is None:
        return "identity"
    return getattr(fn, "__name__", None) or repr(fn)


def _as_projection(projection) -> Projection:
    if projection is None:
        return Projection()
    if isinstance(projection, Projection):
        return projection
    if isinstance(projection, Mapping):
        return Projection(channels=dict(projection))
    if callable(projection):
        return Projection(default=projection)
    raise TypeError(f"cannot interpret projection {projection!r}")


# ---------------------------------------------------------------------------
# Witnesses and lossy-channel discovery
# ---------------------------------------------------------------------------


@dataclass
class WitnessRun:
    """One explored schedule of the abstract pipeline."""

    seed: int | None
    trace_hash: str
    events: int
    streams: dict[str, list]
    lossy: dict[str, str]
    error: str | None = None


def lossy_channels(program, taps: SinkTaps) -> dict[str, str]:
    """Channels whose streams may legally lose items, with the reasons.

    A channel is lossy when its upstream path (walked through ports, and
    across netpipe bridges via the shared protocol object) contains a
    component marked with :func:`~repro.check.invariants.declare_lossy`,
    a component that counted declared drops this run, or a network hop
    that actually lost payloads.  Reasons are joined per channel so a
    refinement failure message names every sanctioned loss on the path.
    """
    stats = program.stats
    components = getattr(program, "pipeline", program).components
    senders = {
        id(c.protocol): c
        for c in components
        if getattr(c, "protocol", None) is not None and c.in_ports()
    }
    out: dict[str, str] = {}
    for channel, sink in taps.sinks.items():
        reasons: list[str] = []
        visited: set[int] = set()
        stack = [sink]
        while stack:
            component = stack.pop()
            if id(component) in visited:
                continue
            visited.add(id(component))
            name = component.name
            if component is not sink:
                if is_lossy(component):
                    reasons.append(f"{name}: {loss_reason(component)}")
                else:
                    drops = stats.drops(name)
                    if drops:
                        reasons.append(
                            f"{name}: "
                            f"{getattr(component, 'loss_reason', None) or 'counted declared drops'}"
                            f" ({drops} dropped)"
                        )
            protocol = getattr(component, "protocol", None)
            if protocol is not None and not component.in_ports():
                # Netpipe receiver: hop the bridge to the sender side.
                sender = senders.get(id(protocol))
                if sender is not None:
                    sent = stats.items_in(sender.name)
                    arrived = stats.items_in(name)
                    if arrived < sent:
                        reasons.append(
                            f"{sender.name} ~ {name}: network lost "
                            f"{sent - arrived} payload(s)"
                        )
                    stack.append(sender)
                continue
            for port in component.in_ports():
                if port.peer is not None:
                    stack.append(port.peer.component)
        if reasons:
            out[channel] = "; ".join(sorted(set(reasons)))
    return out


# ---------------------------------------------------------------------------
# Stream comparison
# ---------------------------------------------------------------------------


@dataclass
class Divergence:
    """Where a concrete stream escapes every witness."""

    channel: str
    mode: str  # "exact" | "subsequence"
    index: int  # first divergent sink index in the concrete stream
    got: list
    expected: list
    reason: str = ""

    def message(self) -> str:
        lines = [
            f"channel {self.channel!r} ({self.mode} mode"
            + (f"; lossy: {self.reason}" if self.reason else "")
            + f") diverges from every witness at sink index {self.index}",
            f"  concrete[{self.index}:]: {_excerpt(self.got, self.index)}",
            f"  closest witness[{self.index}:]: "
            f"{_excerpt(self.expected, self.index)}",
        ]
        return "\n".join(lines)


def _excerpt(items: Sequence[Any], start: int, width: int = 8) -> str:
    lo = max(0, start)
    window = list(items[lo:lo + width])
    suffix = " ..." if len(items) > lo + width else ""
    return f"{window!r}{suffix} (len {len(items)})"


def first_divergence(got: Sequence, ref: Sequence) -> int | None:
    """First index where two sequences differ; None when identical."""
    for index, (g, r) in enumerate(zip(got, ref)):
        if g != r:
            return index
    if len(got) != len(ref):
        return min(len(got), len(ref))
    return None


def subsequence_gap(got: Sequence, ref: Sequence) -> int | None:
    """Index in ``got`` where greedy subsequence embedding into ``ref``
    gets stuck; None when ``got`` embeds completely."""
    at = 0
    for index, item in enumerate(got):
        while at < len(ref) and ref[at] != item:
            at += 1
        if at >= len(ref):
            return index
        at += 1
    return None


def _sorted_union(references: list[list]) -> list | None:
    """Order-consistent union of witness streams, for lossy channels.

    Independent witness runs may each lose *different* items (a lossy
    network drops whatever was in flight under that schedule); a concrete
    run is still reproducible by A if every item it delivered is one A
    could deliver, in A-consistent order.  When every witness stream is
    sorted under the projection, that union is simply the sorted set
    union; otherwise (unorderable or unsorted projections) returns None
    and only per-witness embedding applies.
    """
    try:
        union: set = set()
        for ref in references:
            if any(b < a for a, b in zip(ref, ref[1:])):
                return None
            union.update(ref)
        return sorted(union)
    except TypeError:
        return None


def compare_streams(
    streams: dict[str, list],
    witnesses: Sequence[WitnessRun],
    modes: Mapping[str, tuple[str, str]],
    projection: Projection,
) -> Divergence | None:
    """Match a concrete run's projected streams against the witness set.

    Per channel: exact equality with some witness, or — in subsequence
    mode — embedding into some witness or into the order-consistent union
    of all witnesses.  Returns the deepest divergence of the first
    channel that matches no witness, or None when every channel matches.
    """
    channels = set(streams)
    for witness in witnesses:
        channels.update(witness.streams)
    for channel in sorted(channels):
        if projection.ignores(channel):
            continue
        mode, reason = modes.get(channel, ("exact", ""))
        got = projection.apply(channel, streams.get(channel, []))
        references = [
            projection.apply(channel, witness.streams.get(channel, []))
            for witness in witnesses
        ]
        deepest: int | None = None
        deepest_ref: list = []
        matched = False
        for ref in references:
            gap = (
                first_divergence(got, ref)
                if mode == "exact"
                else subsequence_gap(got, ref)
            )
            if gap is None:
                matched = True
                break
            if deepest is None or gap > deepest:
                deepest, deepest_ref = gap, ref
        if matched:
            continue
        if mode == "subsequence":
            union = _sorted_union(references)
            if union is not None and subsequence_gap(got, union) is None:
                continue
        return Divergence(
            channel=channel,
            mode=mode,
            index=deepest if deepest is not None else 0,
            got=got,
            expected=deepest_ref,
            reason=reason,
        )
    return None


def _channel_modes(
    lossy_param,
    auto_lossy: Mapping[str, str],
) -> dict[str, tuple[str, str]]:
    """Resolve per-channel comparison modes.

    ``lossy_param`` None means auto-detection (the union of declared-lossy
    paths seen in the witness runs and the current concrete run); an
    explicit mapping/set freezes exactly those channels as lossy (by name
    or stem) and everything else as exact.
    """
    if lossy_param is None:
        return {
            channel: ("subsequence", reason)
            for channel, reason in auto_lossy.items()
        }
    if isinstance(lossy_param, Mapping):
        declared = dict(lossy_param)
    else:
        declared = {channel: "declared lossy" for channel in lossy_param}
    modes: dict[str, tuple[str, str]] = {}
    for channel, reason in declared.items():
        modes[channel] = ("subsequence", reason)
    return modes


def _mode_for(
    channel: str, modes: Mapping[str, tuple[str, str]]
) -> tuple[str, str]:
    direct = modes.get(channel)
    if direct is not None:
        return direct
    return modes.get(_stem(channel), ("exact", ""))


# ---------------------------------------------------------------------------
# The certificate
# ---------------------------------------------------------------------------


@dataclass
class RefinementCertificate:
    """Machine-readable outcome of one refinement check.

    Archive it next to the ``BENCH_*.json`` reports: the seeds, choice
    lists and trace hashes make the entire check reproducible, and a
    failed certificate *is* its own minimized, replayable repro.
    """

    verdict: str  # "refines" | "violated" | "abstract-failed"
    abstract: dict
    concrete: dict
    channels: dict
    projection: dict
    counterexample: dict | None = None
    info: dict = field(default_factory=dict)
    format: str = CERTIFICATE_FORMAT

    @property
    def ok(self) -> bool:
        return self.verdict == "refines"

    def summary(self) -> str:
        lines = [
            f"refinement {self.verdict}: {self.concrete.get('name')} "
            f"vs {self.abstract.get('name')} — "
            f"{len(self.concrete.get('runs', []))} concrete schedules "
            f"({self.concrete.get('distinct_interleavings', 0)} distinct) "
            f"against {len(self.abstract.get('witnesses', []))} witnesses"
        ]
        for channel, spec in sorted(self.channels.items()):
            reason = spec.get("reason")
            lines.append(
                f"  channel {channel}: {spec['mode']}"
                + (f" ({reason})" if reason else "")
            )
        if self.counterexample is not None:
            ce = self.counterexample
            lines.append(
                f"counterexample: seed {ce.get('seed')}, "
                f"{len(ce.get('minimized_choices') or [])} minimized "
                f"choices {ce.get('minimized_choices')!r}, "
                f"first divergent sink index {ce.get('divergence_index')}"
                f" on channel {ce.get('channel')!r}"
            )
            if ce.get("error"):
                lines.append(ce["error"])
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise RefinementViolation(self.summary())

    def to_dict(self) -> dict:
        return {
            "format": self.format,
            "verdict": self.verdict,
            "abstract": self.abstract,
            "concrete": self.concrete,
            "channels": self.channels,
            "projection": self.projection,
            "counterexample": self.counterexample,
            "info": self.info,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def from_dict(cls, data: Mapping) -> "RefinementCertificate":
        return cls(
            verdict=data["verdict"],
            abstract=dict(data["abstract"]),
            concrete=dict(data["concrete"]),
            channels=dict(data["channels"]),
            projection=dict(data.get("projection") or {}),
            counterexample=data.get("counterexample"),
            info=dict(data.get("info") or {}),
            format=data.get("format", CERTIFICATE_FORMAT),
        )

    @classmethod
    def load(cls, path) -> "RefinementCertificate":
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


_archive_counter = itertools.count()


def _archive_failure(certificate: "RefinementCertificate") -> None:
    """Save a failed certificate into ``$REPRO_CERT_DIR`` (when set).

    CI points this at a workflow-artifact directory, so every refinement
    failure ships its minimized, replayable counterexample with the run.
    """
    directory = os.environ.get("REPRO_CERT_DIR")
    if not directory or certificate.ok:
        return
    os.makedirs(directory, exist_ok=True)
    stem = re.sub(
        r"[^A-Za-z0-9._-]",
        "_",
        f"{certificate.concrete.get('name') or 'concrete'}"
        f"_vs_{certificate.abstract.get('name') or 'abstract'}",
    )
    path = os.path.join(
        directory, f"CERT_{stem}.{next(_archive_counter)}.json"
    )
    certificate.save(path)
    certificate.info["archived_to"] = path


def _run_record(run: SeedRun) -> dict:
    record = {
        "seed": run.seed,
        "trace_hash": run.trace_hash,
        "events": run.events,
        "n_choices": len(run.choices),
    }
    if len(run.choices) <= MAX_STORED_CHOICES:
        record["choices"] = list(run.choices)
    return record


def _json_items(items: Sequence[Any], limit: int = 32) -> list:
    out = []
    for item in items[:limit]:
        if isinstance(item, (int, float, str, bool)) or item is None:
            out.append(item)
        else:
            out.append(repr(item))
    return out


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------


def check_refinement(
    abstract,
    concrete,
    *,
    seeds: int = 25,
    witness_seeds: int = 5,
    base_seed: int = 0,
    lossy=None,
    projection=None,
    minimize: bool = True,
    minimize_budget: int = 64,
    trace_tail: int = 40,
    stop_on_failure: bool = True,
) -> RefinementCertificate:
    """Certify that ``concrete`` refines ``abstract``.

    Parameters
    ----------
    abstract, concrete:
        Builder callables, microlanguage source strings, or
        :class:`PipelineUnderTest` instances.  ``abstract`` is the
        original pipeline (the specification); ``concrete`` the
        transformed one under certification.
    seeds:
        Seeded schedules of the concrete pipeline to explore, *in
        addition to* its default (unperturbed) schedule.
    witness_seeds:
        Seeded schedules of the abstract pipeline collected as witnesses,
        in addition to its default schedule.
    lossy:
        None (default): auto-detect lossy channels from declared-lossy
        components, drop counters and network loss on each sink's
        upstream path.  A mapping/set of channel names or stems freezes
        exactly those as lossy.
    projection:
        A :class:`Projection`, a callable (applied to every channel), or
        a mapping of channel name/stem to callables.
    minimize:
        Shrink the first violating schedule to a minimized, replayable
        counterexample (ddmin over the recorded tie-break choices).
    stop_on_failure:
        Stop exploring concrete schedules at the first violation (the
        certificate is already "violated"; further seeds add nothing).
    """
    a = PipelineUnderTest.of(abstract, "abstract")
    b = PipelineUnderTest.of(concrete, "concrete")
    projection = _as_projection(projection)

    # -- witness phase: explore the abstract pipeline ----------------------
    current: list = [None]

    def a_build():
        program = a.build()
        current[0] = (program, install_sink_taps(program))
        return program

    witnesses: list[WitnessRun] = []
    a_records: list[dict] = []
    for chooser, seed in _choosers(witness_seeds, base_seed):
        run, excerpt = _run_guarded(
            a_build, chooser, a.drive, None, seed, trace_tail
        )
        a_records.append(_run_record(run))
        if run.failed:
            certificate = RefinementCertificate(
                verdict="abstract-failed",
                abstract={"name": a.name, "witnesses": a_records},
                concrete={"name": b.name, "runs": []},
                channels={},
                projection=projection.describe(),
                counterexample={
                    "seed": run.seed,
                    "choices": run.choices,
                    "error": f"{run.error}\n{excerpt}",
                },
                info={"seeds": seeds, "witness_seeds": witness_seeds,
                      "base_seed": base_seed},
            )
            _archive_failure(certificate)
            return certificate
        program, taps = current[0]
        witnesses.append(
            WitnessRun(
                seed=run.seed,
                trace_hash=run.trace_hash,
                events=run.events,
                streams={k: list(v) for k, v in taps.streams.items()},
                lossy=lossy_channels(program, taps),
            )
        )

    auto_lossy: dict[str, str] = {}
    for witness in witnesses:
        for channel, reason in witness.lossy.items():
            auto_lossy.setdefault(channel, reason)

    # -- concrete phase: explore the transformed pipeline ------------------
    last_divergence: list[Divergence | None] = [None]
    seen_modes: dict[str, tuple[str, str]] = {}

    def b_build():
        program = b.build()
        current[0] = (program, install_sink_taps(program))
        return program

    def b_check(program):
        _program, taps = current[0]
        combined = dict(auto_lossy)
        combined.update(lossy_channels(program, taps))
        declared = _channel_modes(lossy, combined)
        channels = set(taps.streams)
        for witness in witnesses:
            channels.update(witness.streams)
        modes = {
            channel: _mode_for(channel, declared) for channel in channels
        }
        seen_modes.update(modes)
        divergence = compare_streams(
            taps.streams, witnesses, modes, projection
        )
        if divergence is not None:
            last_divergence[0] = divergence
            raise RefinementViolation(divergence.message())

    b_records: list[dict] = []
    b_hashes: set[str] = set()
    first_failure: SeedRun | None = None
    failure_excerpt = ""
    for chooser, seed in _choosers(seeds, base_seed):
        run, excerpt = _run_guarded(
            b_build, chooser, b.drive, b_check, seed, trace_tail
        )
        b_records.append(_run_record(run))
        b_hashes.add(run.trace_hash)
        if run.failed and first_failure is None:
            first_failure = run
            failure_excerpt = excerpt
            if stop_on_failure:
                break

    channels_spec = {
        channel: (
            {"mode": mode, "reason": reason} if reason else {"mode": mode}
        )
        for channel, (mode, reason) in sorted(seen_modes.items())
    }
    certificate = RefinementCertificate(
        verdict="refines" if first_failure is None else "violated",
        abstract={"name": a.name, "witnesses": a_records},
        concrete={
            "name": b.name,
            "runs": b_records,
            "distinct_interleavings": len(b_hashes),
        },
        channels=channels_spec,
        projection=projection.describe(),
        info={
            "seeds": seeds,
            "witness_seeds": witness_seeds,
            "base_seed": base_seed,
        },
    )
    if first_failure is None:
        return certificate

    # -- counterexample: minimize and structure the divergence -------------
    minimized = list(first_failure.choices)
    repro = f"{first_failure.error}\n{failure_excerpt}"
    if minimize and first_failure.trace_hash:
        minimized, shrunk_repro = _minimize(
            b_build, b.drive, b_check, first_failure.choices,
            minimize_budget, trace_tail,
        )
        if shrunk_repro:
            repro = shrunk_repro
    # One deterministic replay of the minimized repro refreshes
    # last_divergence with the *minimized* schedule's divergence and
    # yields the counterexample's replayable trace hash.
    replay_run, _ = _run_guarded(
        b_build, ReplayChooser(minimized), b.drive, b_check, None, trace_tail
    )
    divergence = last_divergence[0]
    certificate.counterexample = {
        "seed": first_failure.seed,
        "choices": list(first_failure.choices),
        "minimized_choices": list(minimized),
        "replay_trace_hash": replay_run.trace_hash,
        "error": repro,
    }
    if divergence is not None:
        certificate.counterexample.update(
            channel=divergence.channel,
            mode=divergence.mode,
            divergence_index=divergence.index,
            got=_json_items(divergence.got[divergence.index:]),
            expected=_json_items(divergence.expected[divergence.index:]),
        )
    _archive_failure(certificate)
    return certificate


def _choosers(count: int, base_seed: int):
    """The default (unperturbed) schedule, then ``count`` seeded ones."""
    yield ReplayChooser([]), None
    for offset in range(count):
        seed = base_seed + offset
        yield SeededChooser(seed), seed


def _run_guarded(build, chooser, drive, check, seed, trace_tail):
    """:func:`explorer._run_once`, but a failing ``build()`` is a failed
    run (with an empty trace) instead of a crashed check."""
    try:
        return _run_once(build, chooser, drive, check, seed, trace_tail)
    except Exception as exc:  # noqa: BLE001 - build failures are findings
        run = SeedRun(
            seed=seed,
            trace_hash="",
            events=0,
            choices=list(getattr(chooser, "choices", []) or []),
            error=f"{type(exc).__name__}: {exc}",
        )
        return run, ""


# ---------------------------------------------------------------------------
# One-call fronts: restructuring and certificate replay
# ---------------------------------------------------------------------------


def certify_restructure(
    build: Callable[[], Any],
    transform: Callable[[Any], Any],
    *,
    name: str = "restructured",
    drive: Callable[[Any], None] | None = None,
    **kwargs: Any,
) -> RefinementCertificate:
    """Certify that a restructuring transformation refines the original.

    ``transform(engine)`` applies the structural change — typically
    :func:`repro.runtime.restructure.replace_component` calls — to a
    freshly built engine before it runs.  The engine's
    ``restructure_log`` is recorded in the certificate.
    """
    log: list = []

    def b_build():
        engine = build()
        transform(engine)
        log[:] = [str(r) for r in getattr(engine, "restructure_log", [])]
        return engine

    certificate = check_refinement(
        PipelineUnderTest(build=build, drive=drive, name="original"),
        PipelineUnderTest(build=b_build, drive=drive, name=name),
        **kwargs,
    )
    certificate.info["restructurings"] = list(log)
    return certificate


def replay_certificate(
    certificate: RefinementCertificate,
    concrete,
    *,
    runs: str = "all",
) -> dict:
    """Deterministically re-run a certificate's recorded schedules.

    For every recorded concrete run (or only the counterexample, with
    ``runs="counterexample"``), rebuilds the pipeline, replays the stored
    seed / choice list, and compares the trace hash bit-for-bit.  The
    regression this guards: a certificate archived by CI must stay a
    complete repro of the schedules it certified.
    """
    b = PipelineUnderTest.of(concrete, "concrete")
    report: dict = {"matched": 0, "mismatched": [], "replayed": 0}

    def replay_one(chooser, expected_hash):
        run, _ = _run_once(b.build, chooser, b.drive, None, None, 0)
        report["replayed"] += 1
        if expected_hash is None or run.trace_hash == expected_hash:
            report["matched"] += 1
        else:
            report["mismatched"].append(
                {"expected": expected_hash, "got": run.trace_hash}
            )
        return run

    if runs != "counterexample":
        for record in certificate.concrete.get("runs", []):
            if record["seed"] is not None:
                chooser = SeededChooser(record["seed"])
            elif record.get("choices") is not None:
                chooser = ReplayChooser(record["choices"])
            else:
                continue
            replay_one(chooser, record.get("trace_hash"))
    ce = certificate.counterexample
    if ce is not None and ce.get("minimized_choices") is not None:
        replay_one(
            ReplayChooser(ce["minimized_choices"]),
            ce.get("replay_trace_hash"),
        )
    report["ok"] = not report["mismatched"] and report["replayed"] > 0
    return report
