"""Flow invariants: conservation, declared-loss accounting, FIFO order.

The middleware promises that threading is *transparent* — however pumps,
coroutines and buffers are allocated, the information flow itself behaves
like a value-preserving pipe.  This module states that promise as
checkable invariants over :class:`~repro.runtime.stats.PipelineStats`:

* **conservation** — for every two-sided component that claims 1:1
  semantics (``conserving`` is not False), items neither vanish nor
  multiply: ``items_in - drops <= items_out + retained <= items_in``,
  where *drops* are the component's own declared-loss counters (``drops``
  / ``dropped*``) and *retained* is what it still holds at snapshot time
  (buffer fill levels, netpipe receive queues).  Components with other
  arities — batchers, fragmenters, multicast tees — set
  ``conserving = False`` and are exempt from the count check.
* **declared loss only** — a component may lose items *only* through
  declared channels: drop counters, an explicit :func:`declare_lossy`
  marking, or a lossy network link.  Anything else is a bug.
* **bridge accounting** — a netpipe pair is one logical pipe split over
  the network: the receiver can never have taken in more protocol
  payloads than the sender sent (no duplication across the wire).
* **FIFO** — helpers (:func:`assert_fifo`, :func:`record_tap`) to assert
  per-pipe ordering on observed items.

Everything raises :class:`~repro.errors.InvariantViolation` (also an
``AssertionError``), so these checks plug directly into pytest and into
the schedule explorer's ``check=`` hook.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.components.filters import MapFilter
from repro.errors import InvariantViolation
from repro.runtime.stats import PipelineStats


def declare_lossy(component, reason: str = "declared lossy"):
    """Mark a component as intentionally lossy.

    The conservation checker then only verifies it never *duplicates*
    (``items_out + retained <= items_in``); any loss is accepted as
    declared.  Returns the component, so it composes inline::

        pipe = src >> declare_lossy(decimator, "drops every other frame") >> sink
    """
    component.declares_drops = True
    component.loss_reason = reason
    return component


def is_lossy(component) -> bool:
    return bool(getattr(component, "declares_drops", False))


def loss_reason(component) -> str:
    """The declared reason a component may lose items."""
    return str(getattr(component, "loss_reason", "declared lossy"))


@dataclass
class FlowIssue:
    """One violated invariant, with the arithmetic that shows it."""

    component: str
    kind: str  # "duplication" | "loss" | "link" | "fifo"
    detail: str

    def __str__(self) -> str:
        return f"{self.component}: {self.kind} — {self.detail}"


@dataclass
class FlowReport:
    """Outcome of a full flow-invariant pass over an engine."""

    issues: list[FlowIssue] = field(default_factory=list)
    checked: list[str] = field(default_factory=list)
    skipped: dict[str, str] = field(default_factory=dict)
    #: Declared-lossy components that were checked (duplication only),
    #: by name -> declared reason.  Surfaced in :meth:`format` so a
    #: refinement or conservation failure names every sanctioned loss.
    lossy: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.issues

    def format(self) -> str:
        if self.ok:
            return (
                f"flow invariants hold ({len(self.checked)} components "
                f"checked, {len(self.skipped)} exempt, "
                f"{len(self.lossy)} declared lossy)"
            )
        lines = [f"{len(self.issues)} flow-invariant violation(s):"]
        lines.extend(f"  {issue}" for issue in self.issues)
        if self.lossy:
            lines.append("declared-lossy components in this pipeline:")
            lines.extend(
                f"  {name}: {reason}"
                for name, reason in sorted(self.lossy.items())
            )
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise InvariantViolation(self.format())


def _two_sided(component) -> bool:
    return bool(component.in_ports()) and bool(component.out_ports())


def _conservation_issues(
    component, stats: PipelineStats
) -> Iterable[FlowIssue]:
    name = component.name
    items_in = stats.items_in(name)
    items_out = stats.items_out(name)
    drops = stats.drops(name)
    retained = stats.retained_in(name)
    accounted = items_out + retained

    if accounted > items_in:
        detail = (
            f"items_out({items_out}) + retained({retained}) > "
            f"items_in({items_in})"
        )
        if is_lossy(component):
            detail += (
                f" [declared lossy: {loss_reason(component)} — "
                "loss is sanctioned, duplication never is]"
            )
        yield FlowIssue(name, "duplication", detail)
    elif not is_lossy(component) and accounted < items_in - drops:
        yield FlowIssue(
            name,
            "loss",
            f"items_out({items_out}) + retained({retained}) < "
            f"items_in({items_in}) - declared drops({drops}); "
            "undeclared loss (count it in a drops/dropped* stat or mark "
            "the component with declare_lossy(component, reason))",
        )


def check_conservation(engine) -> FlowReport:
    """Check per-component item conservation over a (usually finished) run.

    Mid-run snapshots are also legal: an item currently riding a walker
    between two components is counted out of the upstream component but
    not yet into the downstream one, so only run this at quiescence (the
    explorer's ``check=`` hook runs after the drive completes).
    """
    stats = engine.stats
    report = FlowReport()
    senders: dict[Any, Any] = {}
    receivers: dict[Any, Any] = {}

    for component in engine.pipeline.components:
        protocol = getattr(component, "protocol", None)
        if protocol is not None:
            # Netpipe halves: the sender is a sink, the receiver a source;
            # neither is two-sided, but the *pair* bridges one pipe.
            if component.in_ports():
                senders[protocol] = component
            else:
                receivers[protocol] = component
            continue
        if not _two_sided(component):
            report.skipped[component.name] = "endpoint (source/sink)"
            continue
        if getattr(component, "conserving", None) is False:
            report.skipped[component.name] = "non-1:1 arity"
            continue
        if is_lossy(component):
            report.lossy[component.name] = loss_reason(component)
        report.checked.append(component.name)
        report.issues.extend(_conservation_issues(component, stats))

    # Bridge accounting: payloads taken in by the receiver can't exceed
    # payloads the sender pushed into the protocol (loss is the network's
    # prerogative, duplication is nobody's).
    for protocol, sender in senders.items():
        receiver = receivers.get(protocol)
        if receiver is None:
            continue
        sent = stats.items_in(sender.name)
        arrived = stats.items_in(receiver.name)
        report.checked.append(f"{sender.name} ~ {receiver.name}")
        if arrived > sent:
            report.issues.append(
                FlowIssue(
                    f"{sender.name} ~ {receiver.name}",
                    "duplication",
                    f"receiver took in {arrived} payloads but sender only "
                    f"pushed {sent}",
                )
            )
        # Receiver-side conservation: everything delivered is either
        # pulled downstream or still queued.
        out = stats.items_out(receiver.name)
        retained = stats.retained_in(receiver.name)
        if out + retained > arrived:
            report.issues.append(
                FlowIssue(
                    receiver.name,
                    "duplication",
                    f"items_out({out}) + retained({retained}) > "
                    f"delivered({arrived})",
                )
            )
    return report


def check_network(network) -> FlowReport:
    """Per-link packet accounting: sent == delivered + dropped."""
    report = FlowReport()
    for key, link in sorted(network._links.items()):
        name = f"link {key[0]}->{key[1]}"
        report.checked.append(name)
        stats = link.stats
        if stats.delivered + stats.dropped != stats.sent:
            report.issues.append(
                FlowIssue(
                    name,
                    "link",
                    f"sent({stats.sent}) != delivered({stats.delivered}) "
                    f"+ dropped({stats.dropped})",
                )
            )
    return report


def check_flow(engine, network=None) -> FlowReport:
    """Umbrella: conservation over the engine plus link accounting."""
    report = check_conservation(engine)
    net = network if network is not None else engine.network
    if net is not None:
        link_report = check_network(net)
        report.issues.extend(link_report.issues)
        report.checked.extend(link_report.checked)
    return report


def assert_flow(engine, network=None) -> FlowReport:
    """:func:`check_flow`, raising :class:`InvariantViolation` on failure.

    The natural ``check=`` hook for :func:`repro.check.explorer.explore`::

        explore(build, check=assert_flow).raise_if_failed()
    """
    report = check_flow(engine, network)
    report.raise_if_failed()
    return report


# ---------------------------------------------------------------------------
# Order and identity helpers (for taps placed inside test pipelines)
# ---------------------------------------------------------------------------


def record_tap(records: list, name: str | None = None) -> MapFilter:
    """An identity filter appending every item it sees to ``records``.

    Place one on each pipe of interest, then assert over the recorded
    streams with :func:`assert_fifo` / :func:`assert_no_duplicates`.
    """
    def observe(item):
        records.append(item)
        return item

    return MapFilter(observe, name=name or "tap")


def assert_fifo(
    items: Sequence[Any],
    key: Callable[[Any], Any] | None = None,
    pipe: str = "pipe",
) -> None:
    """Assert the observed items are in non-decreasing ``key`` order.

    Default key: the item itself (use :class:`SequenceStamp` upstream and
    ``key=lambda item: item[0]`` for arbitrary payloads).
    """
    extract = key or (lambda item: item)
    previous = None
    for position, item in enumerate(items):
        value = extract(item)
        if previous is not None and value < previous:
            raise InvariantViolation(
                f"{pipe}: FIFO violated at position {position}: "
                f"{value!r} after {previous!r}"
            )
        previous = value


def assert_no_duplicates(
    items: Sequence[Any],
    key: Callable[[Any], Any] | None = None,
    pipe: str = "pipe",
) -> None:
    """Assert no item (by ``key``) appears twice."""
    extract = key or (lambda item: item)
    seen: set = set()
    for position, item in enumerate(items):
        value = extract(item)
        if value in seen:
            raise InvariantViolation(
                f"{pipe}: duplicate item {value!r} at position {position}"
            )
        seen.add(value)


# ---------------------------------------------------------------------------
# Sink taps: observe every sink of a pipeline without rewiring it
# ---------------------------------------------------------------------------

_AUTO_NUMBERED = re.compile(r"^(.*)-(\d+)$")


def channel_name(component_name: str, per_stem: "Counter") -> str:
    """Stable cross-build channel name for a sink.

    Auto-numbered component names (``collect-sink-12``) draw from
    process-global counters, so the absolute number differs between two
    builds of the same program.  Mapping each to ``stem#k`` by order of
    appearance makes channels comparable across independently built
    pipelines (the same trick :func:`repro.check.explorer.trace_hash`
    uses for whole traces).
    """
    hit = _AUTO_NUMBERED.match(component_name)
    stem = hit.group(1) if hit is not None else component_name
    name = f"{stem}#{per_stem[stem]}"
    per_stem[stem] += 1
    return name


def _is_sink(component) -> bool:
    return (
        bool(component.in_ports())
        and not component.out_ports()
        # Netpipe senders terminate a sub-pipeline but are transport, not
        # observation points; the stream continues on the receiver side.
        and getattr(component, "protocol", None) is None
    )


class SinkTaps:
    """Recorded sink streams of one program, keyed by stable channel name.

    Generalizes :func:`record_tap` from "splice an identity filter where
    you want to look" to "observe *every* sink of a wired pipeline": each
    sink's ``push`` (passive) or ``consume`` (active) entry is wrapped in
    place — no rewiring, no extra components, so the schedule and the
    trace are exactly those of the untapped program.
    """

    def __init__(self):
        #: channel name -> items observed at that sink, in arrival order.
        self.streams: dict[str, list] = {}
        #: channel name -> the tapped component (for lossy-path walks).
        self.sinks: dict[str, Any] = {}

    def channels(self) -> list[str]:
        return list(self.streams)


def install_sink_taps(program) -> SinkTaps:
    """Wrap every sink of ``program`` (an Engine, or anything with a
    ``.pipeline``) so its consumed items are recorded per channel.

    Must be installed before the engine compiles its flow walkers (i.e.
    right after ``build()`` in an explorer-style harness); if the engine
    is already set up, the walkers are recompiled so the bound entries
    see the taps.
    """
    taps = SinkTaps()
    pipeline = getattr(program, "pipeline", program)
    per_stem: Counter = Counter()
    for component in pipeline.components:
        if not _is_sink(component):
            continue
        channel = channel_name(component.name, per_stem)
        records: list = []
        taps.streams[channel] = records
        taps.sinks[channel] = component
        _wrap_sink_entry(component, records)
    if getattr(program, "_setup_done", False):
        # Compiled walkers bound the un-tapped entries; rebuild them.
        program._compile_walkers()
    return taps


def _wrap_sink_entry(component, records: list) -> None:
    push = getattr(component, "push", None)
    if callable(push):
        def tapped_push(item, _push=push, _records=records):
            _records.append(item)
            _push(item)

        component.push = tapped_push
        return
    consume = getattr(component, "consume", None)
    if callable(consume):
        def tapped_consume(item, _consume=consume, _records=records):
            _records.append(item)
            _consume(item)

        component.consume = tapped_consume
        return
    raise InvariantViolation(
        f"sink {component.name!r} exposes neither push nor consume; "
        "cannot tap it"
    )
