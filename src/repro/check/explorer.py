"""Schedule exploration: one program, many legal interleavings.

The paper's thread-transparency claim — push/pull/control interfaces hide
all threading and synchronization — only holds if it holds under *every*
schedule the priority semantics allow, not just the default one.  The
scheduler's dispatch order is fully determined except at one point: when
several ready threads share the most urgent ``(priority, deadline)`` key,
the tie is broken by fairness bookkeeping (``last_ran``, creation index).
:func:`explore` re-runs a program N times, each time perturbing exactly
those tie-breaks with a seeded RNG injected through
:attr:`repro.mbt.scheduler.Scheduler.choice_hook`.  Every produced
schedule is therefore *legal* — constraints and priorities are never
violated — so any user-visible invariant (flow conservation, FIFO order,
absence of deadlock) must survive all of them.

When a seed fails, the recorded choice sequence is a complete,
deterministic repro: replaying it (:class:`ReplayChooser`) reproduces the
failure bit-for-bit.  :func:`explore` then shrinks the sequence
(ddmin-style prefix truncation plus per-choice zeroing) to a minimized
repro and formats a trace excerpt of the failing run.
"""

from __future__ import annotations

import hashlib
import random
import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.mbt.thread import MThread

#: Safety bound for the default drive: no explored program should need
#: more dispatches than this to quiesce.
DEFAULT_MAX_STEPS = 2_000_000


class SeededChooser:
    """Tie-break hook that picks uniformly among tied candidates.

    Records the index of every choice it makes, so a failing run can be
    replayed exactly with :class:`ReplayChooser`.
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)
        self.choices: list[int] = []

    def __call__(self, candidates: list[MThread]) -> MThread:
        index = self._rng.randrange(len(candidates))
        self.choices.append(index)
        return candidates[index]


class ReplayChooser:
    """Tie-break hook replaying a recorded choice sequence.

    Once the sequence is exhausted (or an index exceeds the candidate
    count, which can happen after shrinking), the default pick — index 0,
    exactly what the unhooked scheduler would do — applies.
    """

    def __init__(self, choices: Sequence[int]):
        self._choices = list(choices)
        self._at = 0
        self.choices: list[int] = []

    def __call__(self, candidates: list[MThread]) -> MThread:
        index = 0
        if self._at < len(self._choices):
            index = min(self._choices[self._at], len(candidates) - 1)
        self._at += 1
        self.choices.append(index)
        return candidates[index]


# ---------------------------------------------------------------------------
# Trace fingerprints
# ---------------------------------------------------------------------------

_NUMBERED = re.compile(r"^(.*)-(\d+)$")


def _normalizer():
    """Rename auto-numbered component names by order of first appearance.

    Components draw names like ``pump-7`` from process-global counters, so
    absolute numbers differ between two builds of the *same* program in
    one process.  Mapping each to ``base#k`` makes trace hashes comparable
    across seeds while preserving the event structure exactly.
    """
    mapping: dict[str, str] = {}
    per_base: Counter = Counter()

    def normalize(value):
        if not isinstance(value, str):
            return value
        if _NUMBERED.match(value) is None:
            return value
        renamed = mapping.get(value)
        if renamed is None:
            prefix, base = "", value
            for marker in ("pump:", "coro:"):
                if value.startswith(marker):
                    prefix, base = marker, value[len(marker):]
                    break
            hit = _NUMBERED.match(base)
            stem = hit.group(1) if hit is not None else base
            renamed = f"{prefix}{stem}#{per_base[stem]}"
            per_base[stem] += 1
            mapping[value] = renamed
        return renamed

    return normalize


def trace_hash(trace: Sequence[tuple]) -> str:
    """SHA-256 over the normalized event stream of a scheduler trace."""
    normalize = _normalizer()
    blob = "\n".join(
        repr(tuple(normalize(part) for part in event)) for event in trace
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def _trace_tail(scheduler, limit: int) -> str:
    # list() first: the trace may be a ring deque, which cannot be sliced.
    trace = list(scheduler._trace or [])
    tail = trace[-limit:]
    lines = []
    if len(trace) > len(tail):
        lines.append(f"... ({len(trace) - len(tail)} earlier events)")
    for event in tail:
        time_stamp, kind, *details = event
        rendered = " ".join(str(d) for d in details)
        lines.append(f"{time_stamp:10.6f}  {kind:<10} {rendered}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Exploration
# ---------------------------------------------------------------------------


@dataclass
class SeedRun:
    """Outcome of one explored schedule."""

    seed: int | None
    trace_hash: str
    events: int
    choices: list[int]
    error: str | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None


@dataclass
class ExplorationResult:
    """What :func:`explore` found across all seeds."""

    runs: list[SeedRun] = field(default_factory=list)
    failures: list[SeedRun] = field(default_factory=list)
    #: Shrunk choice sequence reproducing the first failure, if any.
    minimized_choices: list[int] | None = None
    #: Error message and trace excerpt of the minimized failing replay.
    repro: str = ""

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def distinct_interleavings(self) -> int:
        return len({run.trace_hash for run in self.runs})

    def summary(self) -> str:
        lines = [
            f"explored {len(self.runs)} schedules, "
            f"{self.distinct_interleavings} distinct interleavings, "
            f"{len(self.failures)} failing"
        ]
        if self.failures:
            first = self.failures[0]
            lines.append(f"first failing seed: {first.seed} — {first.error}")
            if self.minimized_choices is not None:
                lines.append(
                    f"minimized repro: {len(self.minimized_choices)} choices "
                    f"{self.minimized_choices!r}"
                )
            if self.repro:
                lines.append(self.repro)
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise AssertionError(self.summary())


def _default_drive(program: Any) -> None:
    run_to_completion = getattr(program, "run_to_completion", None)
    if run_to_completion is not None:
        run_to_completion(max_steps=DEFAULT_MAX_STEPS)
        return
    program.run(max_steps=DEFAULT_MAX_STEPS)


def _scheduler_of(program: Any):
    return getattr(program, "scheduler", program)


def _run_once(
    build: Callable[[], Any],
    chooser,
    drive,
    check,
    seed: int | None,
    trace_tail: int,
) -> tuple[SeedRun, str]:
    program = build()
    scheduler = _scheduler_of(program)
    if scheduler._trace is None:
        scheduler._trace = []
    scheduler.choice_hook = chooser
    error = None
    try:
        (drive or _default_drive)(program)
        if check is not None:
            check(program)
    except Exception as exc:  # noqa: BLE001 - any failure is a finding
        error = f"{type(exc).__name__}: {exc}"
    trace = scheduler._trace
    run = SeedRun(
        seed=seed,
        trace_hash=trace_hash(trace),
        events=len(trace),
        choices=list(chooser.choices),
        error=error,
    )
    excerpt = _trace_tail(scheduler, trace_tail) if error else ""
    return run, excerpt


def explore(
    build: Callable[[], Any],
    *,
    seeds: int = 50,
    base_seed: int = 0,
    drive: Callable[[Any], None] | None = None,
    check: Callable[[Any], None] | None = None,
    stop_on_failure: bool = False,
    minimize: bool = True,
    minimize_budget: int = 64,
    trace_tail: int = 40,
) -> ExplorationResult:
    """Run ``build()``'s program under ``seeds`` perturbed schedules.

    Parameters
    ----------
    build:
        Zero-arg callable returning a fresh, fully wired but not yet run
        program — an :class:`~repro.runtime.engine.Engine` or anything
        with a ``.scheduler`` (a bare :class:`Scheduler` also works).
        It is called once per seed; programs must not share state.
    drive:
        Runs the program (default: ``run_to_completion`` / ``run`` with a
        step bound).  Exceptions — scheduler errors, deadlocks, assertion
        failures — count as failures of that seed.
    check:
        Called with the program after a successful drive; raise (e.g.
        :class:`~repro.check.invariants.InvariantViolation`) to fail the
        seed.  This is where flow invariants plug in.
    minimize:
        On the first failure, shrink the recorded choice sequence to a
        minimized deterministic repro (costs up to ``minimize_budget``
        replays).

    Any test can wrap its pipeline in this and assert ``result.ok`` plus
    ``result.distinct_interleavings > 1``.
    """
    result = ExplorationResult()
    for offset in range(seeds):
        seed = base_seed + offset
        run, excerpt = _run_once(
            build, SeededChooser(seed), drive, check, seed, trace_tail
        )
        result.runs.append(run)
        if run.failed:
            result.failures.append(run)
            if not result.repro:
                result.repro = f"{run.error}\n{excerpt}"
            if stop_on_failure:
                break

    if result.failures and minimize:
        first = result.failures[0]
        minimized, repro = _minimize(
            build, drive, check, first.choices, minimize_budget, trace_tail
        )
        result.minimized_choices = minimized
        if repro:
            result.repro = repro
    return result


def replay(
    build: Callable[[], Any],
    choices: Sequence[int],
    *,
    drive: Callable[[Any], None] | None = None,
    check: Callable[[Any], None] | None = None,
    trace_tail: int = 40,
) -> tuple[SeedRun, str]:
    """Deterministically replay a recorded/minimized choice sequence.

    Returns the run outcome and (when it failed) a trace excerpt — the
    entry point for debugging a repro out of a CI failure message.
    """
    return _run_once(
        build, ReplayChooser(choices), drive, check, None, trace_tail
    )


def run_once(
    build: Callable[[], Any],
    chooser,
    *,
    drive: Callable[[Any], None] | None = None,
    check: Callable[[Any], None] | None = None,
    seed: int | None = None,
    trace_tail: int = 40,
) -> tuple[SeedRun, str]:
    """Run ``build()``'s program once under an explicit tie-break chooser.

    The single-run primitive behind :func:`explore` / :func:`replay`,
    public so higher-level drivers (the refinement checker) can run their
    own seed loops while sharing the choice recording, trace hashing and
    failure formatting.  ``chooser`` is any ``choice_hook`` callable with
    a ``choices`` list attribute (:class:`SeededChooser`,
    :class:`ReplayChooser`, or a custom hook).
    """
    return _run_once(build, chooser, drive, check, seed, trace_tail)


def minimize_failure(
    build: Callable[[], Any],
    choices: Sequence[int],
    *,
    drive: Callable[[Any], None] | None = None,
    check: Callable[[Any], None] | None = None,
    budget: int = 64,
    trace_tail: int = 40,
) -> tuple[list[int], str]:
    """Shrink a failing choice sequence to a minimized deterministic repro.

    Public wrapper over the ddmin machinery :func:`explore` uses: binary-
    search the shortest failing prefix, zero residual non-default choices,
    drop trailing defaults.  Returns the minimized sequence and the
    formatted error + trace excerpt of the minimized failing replay (empty
    if the given sequence did not reproduce a failure).
    """
    return _minimize(build, drive, check, list(choices), budget, trace_tail)


def _minimize(
    build,
    drive,
    check,
    choices: list[int],
    budget: int,
    trace_tail: int,
) -> tuple[list[int], str]:
    """Shrink a failing choice sequence: truncate the tail, zero entries.

    Prefix truncation relies on the replay default (choice 0 = unhooked
    scheduler behaviour) for everything past the prefix.  Failure under
    *any* error counts — standard delta-debugging practice.
    """
    attempts = 0
    best = list(choices)
    best_repro = ""

    def fails(candidate: list[int]) -> tuple[bool, str]:
        nonlocal attempts
        attempts += 1
        run, excerpt = _run_once(
            build, ReplayChooser(candidate), drive, check, None, trace_tail
        )
        return run.failed, (f"{run.error}\n{excerpt}" if run.failed else "")

    # Confirm determinism of the repro before shrinking.
    failed, repro = fails(best)
    if not failed:
        return best, ""
    best_repro = repro

    # Binary-search the shortest failing prefix (monotone heuristic).
    lo, hi = 0, len(best)
    while lo < hi and attempts < budget:
        mid = (lo + hi) // 2
        failed, repro = fails(best[:mid])
        if failed:
            hi = mid
            best, best_repro = best[:mid], repro
        else:
            lo = mid + 1

    # Zero out residual non-default choices where possible.
    index = 0
    while index < len(best) and attempts < budget:
        if best[index] != 0:
            candidate = list(best)
            candidate[index] = 0
            failed, repro = fails(candidate)
            if failed:
                best, best_repro = candidate, repro
        index += 1

    # Drop trailing defaults — they are implied by the replay default.
    while best and best[-1] == 0:
        best.pop()
    return best, best_repro
