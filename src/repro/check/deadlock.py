"""Wait-for-graph deadlock and hang detection.

The virtual scheduler never *hangs* on a deadlocked program: when no
thread is ready and no timer is pending, ``run()`` simply returns — which
is correct for servers parked in a receive, and silently wrong for a
cycle of threads each waiting for a reply another will never send.  This
module inspects the scheduler's wait state after (or during) a run and
turns that silence into a report:

* every blocked thread, with the *reason* it blocks — the thread it waits
  on when known (synchronous ``Call`` replies record it; raw receives may
  declare it via :func:`receive_from` or a ``waiting_on`` attribute on
  the match predicate), a human description of its match predicate
  (closure/default bindings included), and a snapshot of messages queued
  but unmatched in its mailbox (the lost-wakeup shape);
* the wait-for graph over those edges and every cycle in it — a cycle is
  a certain deadlock;
* the "all blocked, timers empty" condition — a hang *if* the program
  was expected to terminate (a quiescent server looks the same, so the
  caller decides via :meth:`DeadlockReport.is_hung`).

Reports embed a formatted trace excerpt when tracing was enabled, in the
style of :func:`repro.mbt.tracing.format_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import DeadlockError
from repro.mbt.message import Message
from repro.mbt.scheduler import Scheduler

#: How many trailing trace events a report quotes.
TRACE_TAIL = 30

#: Truncation bound for repr'd predicate bindings.
_VALUE_WIDTH = 60


def receive_from(
    sender: str, kinds: Iterable[str] | None = None
) -> Callable[[Message], bool]:
    """A selective-receive match predicate that declares its wait-for edge.

    ``yield Receive(match=receive_from("worker"))`` blocks exactly like a
    hand-written predicate, but the deadlock detector can draw the edge
    ``this thread -> worker`` because the predicate carries a
    ``waiting_on`` attribute (picked up by ``Scheduler._block_receive``).
    """
    wanted = frozenset(kinds) if kinds is not None else None

    def match(message: Message) -> bool:
        if message.sender != sender:
            return False
        return wanted is None or message.kind in wanted

    match.waiting_on = sender
    match.__qualname__ = (
        f"receive_from({sender!r})"
        if wanted is None
        else f"receive_from({sender!r}, kinds={sorted(wanted)!r})"
    )
    return match


def describe_match(match) -> str:
    """Human-readable description of a receive match predicate.

    Shows the callable's qualified name plus its closure and
    default-argument bindings, so a report line reads e.g.
    ``Scheduler._drive.<locals>.<lambda> [_rid=17]`` — enough to see
    *which* reply a blocked caller is waiting for.
    """
    if match is None:
        return "any message"
    name = getattr(match, "__qualname__", None) or repr(match)
    bindings: list[str] = []
    code = getattr(match, "__code__", None)
    closure = getattr(match, "__closure__", None)
    if code is not None and closure:
        for var, cell in zip(code.co_freevars, closure):
            try:
                value = repr(cell.cell_contents)
            except ValueError:  # pragma: no cover - unfilled cell
                value = "<empty>"
            bindings.append(f"{var}={value[:_VALUE_WIDTH]}")
    defaults = getattr(match, "__defaults__", None)
    if code is not None and defaults:
        arg_names = code.co_varnames[: code.co_argcount]
        for var, value in zip(arg_names[-len(defaults):], defaults):
            bindings.append(f"{var}={repr(value)[:_VALUE_WIDTH]}")
    if bindings:
        return f"{name} [{', '.join(bindings)}]"
    return name


@dataclass
class WaitInfo:
    """One blocked thread and everything we know about why."""

    thread: str
    kind: str  # "receive" | "time"
    waiting_on: str | None
    reason: str | None
    match: str
    queued: list[tuple[str, str]]  # unmatched mailbox (kind, sender)

    def format(self) -> str:
        parts = [f"{self.thread}: blocked in {self.kind}"]
        if self.waiting_on:
            parts.append(f"waiting on {self.waiting_on!r}")
        if self.reason:
            parts.append(f"({self.reason})")
        parts.append(f"match: {self.match}")
        if self.queued:
            queued = ", ".join(f"{kind}<-{sender}" for kind, sender in self.queued)
            parts.append(f"queued-but-unmatched: [{queued}]")
        return " ".join(parts)


def blocked_waits(scheduler: Scheduler) -> list[WaitInfo]:
    """WaitInfo for every live blocked thread, in thread-creation order."""
    infos = []
    for thread in scheduler.threads.values():
        wait = thread._wait
        if wait is None or thread.terminated:
            continue
        waiting_on = wait.waiting_on
        if waiting_on is None and wait.match is not None:
            waiting_on = getattr(wait.match, "waiting_on", None)
        infos.append(
            WaitInfo(
                thread=thread.name,
                kind=wait.kind,
                waiting_on=waiting_on,
                reason=wait.reason,
                match=(
                    describe_match(wait.match)
                    if wait.kind == "receive"
                    else "timer wake-up"
                ),
                queued=thread.mailbox.snapshot(),
            )
        )
    return infos


def waitfor_graph(scheduler: Scheduler) -> dict[str, set[str]]:
    """Directed wait-for edges derivable from the current wait states."""
    edges: dict[str, set[str]] = {}
    for info in blocked_waits(scheduler):
        if info.waiting_on:
            edges.setdefault(info.thread, set()).add(info.waiting_on)
    return edges


def find_cycles(edges: dict[str, set[str]]) -> list[list[str]]:
    """All distinct simple cycles in a wait-for graph (DFS, small graphs).

    Each cycle is rotated so its lexicographically smallest member comes
    first, and reported once.
    """
    seen: set[tuple[str, ...]] = set()
    cycles: list[list[str]] = []

    def visit(node: str, path: list[str], on_path: set[str]) -> None:
        for succ in sorted(edges.get(node, ())):
            if succ in on_path:
                cycle = path[path.index(succ):]
                pivot = cycle.index(min(cycle))
                canon = tuple(cycle[pivot:] + cycle[:pivot])
                if canon not in seen:
                    seen.add(canon)
                    cycles.append(list(canon))
                continue
            if succ in edges:
                path.append(succ)
                on_path.add(succ)
                visit(succ, path, on_path)
                on_path.discard(succ)
                path.pop()

    for start in sorted(edges):
        visit(start, [start], {start})
    return cycles


@dataclass
class DeadlockReport:
    """Everything the detector can say about a (possibly) stuck scheduler."""

    blocked: list[WaitInfo] = field(default_factory=list)
    edges: dict[str, set[str]] = field(default_factory=dict)
    cycles: list[list[str]] = field(default_factory=list)
    #: True when no thread is ready and no timer is pending.
    quiescent: bool = False
    #: True when the watchdog saw dispatches without progress (livelock).
    livelock: bool = False
    trace_excerpt: str = ""

    @property
    def has_cycle(self) -> bool:
        return bool(self.cycles)

    @property
    def is_hung(self) -> bool:
        """All blocked with nothing left to wake anyone: a hang *if* the
        program was expected to terminate (a parked server also matches)."""
        return self.quiescent and bool(self.blocked)

    @property
    def is_deadlock(self) -> bool:
        return self.has_cycle or self.livelock

    def format(self) -> str:
        lines = []
        if self.has_cycle:
            for cycle in self.cycles:
                lines.append(
                    "wait-for cycle: " + " -> ".join(cycle + cycle[:1])
                )
        if self.livelock:
            lines.append("livelock: dispatches without progress")
        if self.is_hung and not self.has_cycle:
            lines.append(
                "hang: all threads blocked, no timers pending"
            )
        if not lines:
            lines.append("no deadlock detected")
        for info in self.blocked:
            lines.append("  " + info.format())
        if self.trace_excerpt:
            lines.append("trace tail:")
            lines.append(self.trace_excerpt)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


def _excerpt(scheduler: Scheduler, limit: int) -> str:
    trace = scheduler._trace
    if not trace:
        return ""
    tail = trace[-limit:]
    lines = []
    if len(trace) > len(tail):
        lines.append(f"... ({len(trace) - len(tail)} earlier events)")
    for event in tail:
        time_stamp, kind, *details = event
        rendered = " ".join(str(d) for d in details)
        lines.append(f"{time_stamp:10.6f}  {kind:<10} {rendered}")
    return "\n".join(lines)


def detect(scheduler: Scheduler, trace_tail: int = TRACE_TAIL) -> DeadlockReport:
    """Inspect a scheduler's wait state (without running anything)."""
    blocked = blocked_waits(scheduler)
    edges = waitfor_graph(scheduler)
    ready = any(t.is_ready() for t in scheduler.threads.values())
    timers = scheduler._next_timer_time() is not None
    return DeadlockReport(
        blocked=blocked,
        edges=edges,
        cycles=find_cycles(edges),
        quiescent=not ready and not timers,
        trace_excerpt=_excerpt(scheduler, trace_tail),
    )


def assert_no_deadlock(
    scheduler: Scheduler, expect_idle: bool = False
) -> DeadlockReport:
    """Raise :class:`DeadlockError` on a wait-for cycle (always) or on any
    blocked thread at quiescence (with ``expect_idle=True``, for programs
    that should have terminated cleanly).  Returns the report otherwise.
    """
    report = detect(scheduler)
    if report.has_cycle or (expect_idle and report.is_hung):
        raise DeadlockError(report.format())
    return report


def run_watched(
    scheduler: Scheduler,
    max_steps: int = 2_000_000,
    window: int = 50_000,
) -> DeadlockReport:
    """Run to quiescence under a deadlock/livelock watchdog.

    Progress is measured per ``window`` of dispatches as (virtual time,
    messages delivered); a full window without either moving is reported
    as livelock.  On quiescence the normal cycle/hang detection applies.
    Raises :class:`DeadlockError` when a cycle or livelock is found;
    returns the final report otherwise.
    """
    while True:
        before = (scheduler.clock.now(), scheduler.messages_delivered)
        start = scheduler.steps
        scheduler.run(max_steps=start + window)
        if scheduler.steps < start + window:
            report = detect(scheduler)
            if report.has_cycle:
                raise DeadlockError(report.format())
            return report
        after = (scheduler.clock.now(), scheduler.messages_delivered)
        if after == before:
            report = detect(scheduler)
            report.livelock = True
            raise DeadlockError(report.format())
        if scheduler.steps >= max_steps:
            raise DeadlockError(
                f"step budget ({max_steps}) exhausted without quiescence\n"
                + detect(scheduler).format()
            )
